//! The discrete-event engine: simulated threads stepped in clock order.
//!
//! Every simulated thread (a [`Process`]) owns a local clock. The engine
//! always steps the process with the smallest clock, which guarantees that
//! when a process observes shared state at time *t*, every other process has
//! already produced all effects it stamped at times ≤ *t*. Combined with
//! single-threaded execution this makes runs bit-for-bit deterministic.
//!
//! A process charges simulated time through its [`Ctx`]: memory accesses go
//! through the [`CacheHierarchy`], pure compute
//! charges a constant, and spinning on an empty queue or held lock charges a
//! spin quantum. A step that charges nothing is treated as one iteration of a
//! polling loop and charged `poll_quantum`, so busy-polling cores consume
//! simulated time just like pinned threads consume real cycles.
//!
//! # Scheduler and the burst fast path
//!
//! The ready queue is a hierarchical [`TimerWheel`] whose pop order is
//! bit-identical to the `BinaryHeap<Reverse<(SimTime, ProcId)>>` it replaced:
//! ascending `(time, pid)`, pid breaking ties. On top of it sits *burst
//! stepping*: after a step, if the process's advanced clock is still strictly
//! ahead of every other key (in the same `(time, pid)` order the scheduler
//! would use) and the step did not report [`StepOutcome::Handoff`], the
//! engine re-steps it immediately instead of pushing and re-popping. Each
//! burst iteration is a *logical pop*: the schedule-exploration and
//! fault-stall gates run (and count decisions) exactly as on the slow path,
//! so perturbed and replayed runs stay byte-identical. See DESIGN.md §10.

use crate::cache::{CacheHierarchy, StatClass};
use crate::config::MachineConfig;
use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// Identifier of a simulated process.
pub type ProcId = usize;

/// What one [`Process::step`] accomplished.
///
/// The outcome never influences simulated time or event order — all costs
/// are charged through [`Ctx`], and the burst fast path only engages when
/// the ordering is provably unchanged — it only steers how the engine
/// *hosts* the next step (fast-path re-step vs. scheduler round-trip).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step did useful work.
    Progress,
    /// Nothing to do; the engine's idle-step accounting applies as usual.
    Idle,
    /// The process wants its core handed to a successor stage (μTPS's §3.5
    /// thread reassignment); the engine ends any burst so the handoff
    /// re-enters the scheduler.
    Handoff,
}

/// A simulated thread.
///
/// `step` should perform a *bounded* amount of work (one state-machine
/// transition, one batch element, one poll) and return; the engine will
/// re-schedule the process at its advanced clock. Keeping steps short keeps
/// cross-process interleaving fine-grained.
pub trait Process<W> {
    /// Executes one slice of work against the shared `world`.
    fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut W) -> StepOutcome;

    /// Human-readable name for traces.
    fn name(&self) -> &'static str {
        "process"
    }
}

/// The hardware owned by the engine: configuration plus the cache model.
pub struct Machine {
    /// Machine configuration (latencies, geometry, network).
    pub cfg: MachineConfig,
    /// The simulated cache hierarchy.
    pub cache: CacheHierarchy,
    /// Named per-stage instruments (counters, gauges, latency histograms)
    /// any process can record into; see [`crate::metrics::MetricsRegistry`].
    pub registry: crate::metrics::MetricsRegistry,
    /// Active fault plan; the zero plan by default. See [`crate::fault`].
    pub faults: crate::fault::FaultPlan,
    /// Active schedule-perturbation plan; inert by default. See
    /// [`crate::schedule`].
    pub schedule: crate::schedule::SchedulePlan,
    /// NIC buffer memory holding message payload bytes; see
    /// [`crate::arena::PayloadArena`].
    pub payloads: crate::arena::PayloadArena,
}

impl Machine {
    /// Builds the machine with `cores` server cores.
    pub fn new(cfg: MachineConfig, cores: usize) -> Self {
        Machine {
            cache: CacheHierarchy::new(&cfg, cores),
            cfg,
            registry: crate::metrics::MetricsRegistry::new(),
            faults: crate::fault::FaultPlan::inactive(),
            schedule: crate::schedule::SchedulePlan::inactive(),
            payloads: crate::arena::PayloadArena::new(),
        }
    }
}

/// Per-step execution context handed to a [`Process`].
///
/// A process belongs to exactly one machine (single-machine simulations have
/// only machine 0); its memory accesses are charged against that machine's
/// cache hierarchy and its instruments land in that machine's registry.
/// Cluster-level processes (routers, migration controllers) may reach the
/// other machines through [`Ctx::machine_at`].
pub struct Ctx<'a> {
    machines: &'a mut [Machine],
    mid: usize,
    pid: ProcId,
    core: Option<usize>,
    class: StatClass,
    clock: SimTime,
    start: SimTime,
    halted: bool,
}

impl<'a> Ctx<'a> {
    /// The process's current local time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The server core this process is pinned to, if any. `None` means the
    /// process runs on an unmodeled CPU (e.g. a client node).
    pub fn core(&self) -> Option<usize> {
        self.core
    }

    /// Changes the metrics attribution class (e.g. when a worker switches
    /// between the CR and MR layers).
    pub fn set_class(&mut self, class: StatClass) {
        self.class = class;
    }

    /// Direct access to the machine this process runs on (CLOS
    /// reconfiguration, metrics).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machines[self.mid]
    }

    /// Index of the machine this process runs on.
    pub fn machine_id(&self) -> usize {
        self.mid
    }

    /// Number of machines in the simulation.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Access to an arbitrary machine of the simulation. Cluster-level
    /// processes (shard routers, migration controllers) use this to touch
    /// the payload arenas and registries of other server machines.
    pub fn machine_at(&mut self, idx: usize) -> &mut Machine {
        &mut self.machines[idx]
    }

    /// Charges a memory read of `len` bytes at `addr`.
    pub fn read(&mut self, addr: usize, len: usize) {
        self.mem(addr, len, false)
    }

    /// Charges a memory write of `len` bytes at `addr`.
    pub fn write(&mut self, addr: usize, len: usize) {
        self.mem(addr, len, true)
    }

    fn mem(&mut self, addr: usize, len: usize, write: bool) {
        let m = &mut self.machines[self.mid];
        let cost = match self.core {
            Some(core) => m
                .cache
                .access(core, self.class, addr, len, write, self.clock),
            None => m.cfg.cost.l1_hit,
        };
        self.clock += cost;
    }

    /// Charges an atomic read-modify-write at `addr`.
    pub fn atomic(&mut self, addr: usize) {
        self.atomic_hold(addr, 0)
    }

    /// Charges an atomic that keeps its line busy for `hold_ps` extra
    /// picoseconds (a short lock-protected critical section).
    pub fn atomic_hold(&mut self, addr: usize, hold_ps: u64) {
        let m = &mut self.machines[self.mid];
        let cost = match self.core {
            Some(core) => m
                .cache
                .atomic_hold(core, self.class, addr, self.clock, hold_ps),
            None => m.cfg.cost.l1_hit + m.cfg.cost.atomic_extra,
        };
        self.clock += cost;
    }

    /// Issues a software prefetch for `len` bytes at `addr`.
    pub fn prefetch(&mut self, addr: usize, len: usize) {
        let m = &mut self.machines[self.mid];
        if let Some(core) = self.core {
            m.cache.prefetch(core, self.class, addr, len, self.clock);
        }
        self.clock += m.cfg.cost.prefetch_issue;
    }

    /// Charges `ns` nanoseconds of pure computation.
    pub fn compute_ns(&mut self, ns: u64) {
        self.clock += ns * crate::time::NANOS;
    }

    /// Charges `ps` picoseconds of pure computation.
    pub fn compute_ps(&mut self, ps: u64) {
        self.clock += ps;
    }

    /// Charges one spin-loop iteration (contended lock, empty queue).
    pub fn spin(&mut self) {
        self.clock += self.machines[self.mid].cfg.cost.spin_quantum;
    }

    /// Charges one stackless-coroutine switch (batched-FSM executors call
    /// this per interleaved poll; §3.3).
    pub fn fsm_switch(&mut self) {
        self.clock += self.machines[self.mid].cfg.cost.fsm_switch;
    }

    /// Charges `n` functional-stage transitions (front-end refills). A
    /// run-to-completion worker crosses parse→index→copy→respond on every
    /// request; a staged worker stays within one stage's code.
    pub fn stage_transitions(&mut self, n: u64) {
        self.clock += n * self.machines[self.mid].cfg.cost.stage_transition;
    }

    /// Advances the local clock to `t` (sleep/backoff); no-op if in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Marks this process finished; it will not be scheduled again.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Whether any simulated time was charged in this step so far.
    pub fn progressed(&self) -> bool {
        self.clock > self.start
    }
}

struct ProcEntry<W> {
    proc: Box<dyn Process<W>>,
    clock: SimTime,
    machine: usize,
    core: Option<usize>,
    class: StatClass,
    /// Cleared on halt; dead entries stay in the slab (pids are stable and
    /// never reused) but own no scheduler key and are never stepped again.
    live: bool,
}

/// Upper bound on consecutive fast-path re-steps of one process before it is
/// pushed back through the scheduler (bounds how long the engine runs
/// without touching the wheel; see DESIGN.md §10).
const BURST_BUDGET: u32 = 64;

/// The simulation engine over a world `W`.
///
/// The engine hosts one or more [`Machine`]s under a single global clock:
/// every process is pinned to a machine (and optionally to one of its
/// cores), so a sharded cluster of N server machines runs inside the same
/// deterministic event loop as a single-machine experiment — machine 0 is
/// the only machine unless [`Engine::add_machine`] is called.
pub struct Engine<W> {
    /// Shared world state all processes operate on.
    pub world: W,
    machines: Vec<Machine>,
    /// Flat slab indexed by [`ProcId`]; the scheduler holds only
    /// `(SimTime, ProcId)` keys, one per live process, so a pop never moves
    /// the process entry itself.
    procs: Vec<ProcEntry<W>>,
    wheel: TimerWheel,
    now: SimTime,
    steps: u64,
    bursts: u64,
    live: usize,
    /// Recycled buffer for [`TimerWheel::pop_ties`] tie-cohorts; holding it
    /// on the engine keeps its capacity across `run_until` calls.
    cohort: Vec<ProcId>,
    /// Keys deferred past the live cohort at one shared time (the lockstep
    /// fast path); becomes the next cohort by swap when its time is next.
    pending: Vec<ProcId>,
    /// Scratch for merging wheel ties with `pending` at the same time.
    tie_buf: Vec<ProcId>,
}

impl<W> Engine<W> {
    /// Creates an engine simulating `cores` server cores around `world`.
    pub fn new(cfg: MachineConfig, cores: usize, world: W) -> Self {
        Engine {
            world,
            machines: vec![Machine::new(cfg, cores)],
            procs: Vec::new(),
            wheel: TimerWheel::new(),
            now: SimTime::ZERO,
            steps: 0,
            bursts: 0,
            live: 0,
            cohort: Vec::new(),
            pending: Vec::new(),
            tie_buf: Vec::new(),
        }
    }

    /// Adds another server machine (its own cache hierarchy, registry,
    /// fault plan and payload arena) and returns its index.
    pub fn add_machine(&mut self, cfg: MachineConfig, cores: usize) -> usize {
        self.machines.push(Machine::new(cfg, cores));
        self.machines.len() - 1
    }

    /// Registers a process on machine 0. `core: Some(c)` pins it to server
    /// core `c` (its memory accesses are charged against that core's
    /// caches); `None` runs it on an unmodeled CPU.
    pub fn spawn(
        &mut self,
        core: Option<usize>,
        class: StatClass,
        proc: Box<dyn Process<W>>,
    ) -> ProcId {
        self.spawn_on(0, core, class, proc)
    }

    /// Registers a process on machine `machine`.
    pub fn spawn_on(
        &mut self,
        machine: usize,
        core: Option<usize>,
        class: StatClass,
        proc: Box<dyn Process<W>>,
    ) -> ProcId {
        assert!(machine < self.machines.len(), "no machine {machine}");
        let pid = self.procs.len();
        self.procs.push(ProcEntry {
            proc,
            clock: self.now,
            machine,
            core,
            class,
            live: true,
        });
        self.live += 1;
        self.wheel.push(self.now, pid);
        pid
    }

    /// The time of the last completed step.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total steps executed (for diagnostics).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Steps executed on the burst fast path (no scheduler round-trip).
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Scheduler timer-wheel cascade operations performed so far.
    pub fn wheel_cascades(&self) -> u64 {
        self.wheel.cascades()
    }

    /// Machine 0 (for CLOS changes, metrics snapshots).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machines[0]
    }

    /// Immutable view of machine 0.
    pub fn machine_ref(&self) -> &Machine {
        &self.machines[0]
    }

    /// Mutable access to machine `idx`.
    pub fn machine_mut(&mut self, idx: usize) -> &mut Machine {
        &mut self.machines[idx]
    }

    /// Immutable view of machine `idx`.
    pub fn machine_at(&self, idx: usize) -> &Machine {
        &self.machines[idx]
    }

    /// Number of machines in the simulation.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Runs until every live process's clock is ≥ `deadline` (or no process
    /// remains). Returns the number of steps executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start_steps = self.steps;
        // The scheduler drains whole *tie-cohorts*: all keys at the minimum
        // time, processed in ascending pid order — exactly the order the
        // old heap popped them one by one. No gate or step can reschedule a
        // process back to the cohort's time (schedule stalls are ≥ 1 ps,
        // fault stalls end strictly later, an unmoved step clock is bumped
        // by the poll quantum), so the cohort is closed once formed.
        //
        // Cohorts come from two places. The slow path drains the wheel
        // (`pop_ties`, one slot scan per cohort). The fast path never
        // touches the wheel: members whose step ends at one shared future
        // time — a polling fleet advancing in lockstep — are appended to
        // `pending`, which becomes the next cohort by buffer swap when its
        // time is next globally. Keys that break the pattern (different
        // time, out-of-order pid, stall deferrals) fall back to the wheel,
        // and a cohort whose time is held by both sides merges the two
        // ascending pid runs. Either way every cohort is the complete
        // sorted set of minimum-time keys, so the step and decision
        // sequence stays byte-identical to the heap scheduler's.
        let mut cohort = std::mem::take(&mut self.cohort);
        let mut pending = std::mem::take(&mut self.pending);
        let mut tie_buf = std::mem::take(&mut self.tie_buf);
        let mut cohort_pos = 0usize;
        let mut cohort_t = SimTime::ZERO;
        // Time shared by every key in `pending`; meaningful only while
        // `pending` is nonempty.
        let mut pending_t = SimTime::ZERO;
        // Per-machine gate flags, hoisted out of the hot loop: plans are
        // installed by runners between `run_until` calls, never mid-run.
        let gates: Vec<(bool, bool, u64)> = self
            .machines
            .iter()
            .map(|m| {
                (
                    m.schedule.armed(),
                    m.faults.has_stalls(),
                    m.cfg.cost.poll_quantum,
                )
            })
            .collect();
        'sched: loop {
            if cohort_pos >= cohort.len() {
                cohort.clear();
                cohort_pos = 0;
                let wheel_next = self.wheel.peek();
                let next_t = match (wheel_next, pending.is_empty()) {
                    (Some((wt, _)), false) => wt.min(pending_t),
                    (Some((wt, _)), true) => wt,
                    (None, false) => pending_t,
                    (None, true) => break,
                };
                if next_t >= deadline {
                    break;
                }
                cohort_t = next_t;
                if !pending.is_empty() && pending_t == next_t {
                    if wheel_next.is_some_and(|(wt, _)| wt == next_t) {
                        // Both sides hold keys at `next_t`: merge the two
                        // ascending pid runs.
                        self.wheel.pop_ties(&mut tie_buf);
                        let (mut i, mut j) = (0, 0);
                        while i < pending.len() && j < tie_buf.len() {
                            if pending[i] < tie_buf[j] {
                                cohort.push(pending[i]);
                                i += 1;
                            } else {
                                cohort.push(tie_buf[j]);
                                j += 1;
                            }
                        }
                        cohort.extend_from_slice(&pending[i..]);
                        cohort.extend_from_slice(&tie_buf[j..]);
                        pending.clear();
                    } else {
                        // The whole minimum cohort is the pending buffer.
                        std::mem::swap(&mut cohort, &mut pending);
                        pending.clear();
                    }
                } else {
                    self.wheel.pop_ties(&mut cohort);
                }
            }
            let pid = cohort[cohort_pos];
            cohort_pos += 1;
            let mut t = cohort_t;
            let mut budget = BURST_BUDGET;
            // One iteration of this inner loop is one *logical pop* of
            // `pid`: the first comes from the cohort, later ones from the
            // burst fast path. Every iteration runs the same gates in the
            // same order, so the step/decision sequence is byte-identical
            // to a scheduler that pushed and re-popped each time.
            loop {
                let entry = &mut self.procs[pid];
                debug_assert!(entry.live);
                debug_assert_eq!(entry.clock, t);
                let mid = entry.machine;
                let (armed, has_stalls, poll_quantum) = gates[mid];
                // Schedule exploration: at seed-chosen decisions, stall the
                // popped process so whichever process is next in clock order
                // runs first. Counted per logical pop, so every run —
                // perturbed, replayed, or burst-stepped — sees the same
                // decision indexing.
                if armed {
                    if let Some(stall_ps) = self.machines[mid].schedule.on_pop(pid) {
                        self.machines[mid].registry.counter_inc("schedule.stall");
                        let end = t + stall_ps;
                        entry.clock = end;
                        self.wheel.push(end, pid);
                        continue 'sched;
                    }
                }
                // A core inside a stall window executes nothing: defer its
                // next step to the window end. Guarded so fault-free runs
                // never pay for the check beyond one branch.
                if has_stalls {
                    if let Some(core) = entry.core {
                        if let Some(end) = self.machines[mid].faults.stall_until(core, t) {
                            self.machines[mid].faults.note_stall_defer();
                            self.machines[mid].registry.counter_inc("fault.stall_defer");
                            entry.clock = end;
                            self.wheel.push(end, pid);
                            continue 'sched;
                        }
                    }
                }
                let mut ctx = Ctx {
                    machines: &mut self.machines,
                    mid,
                    pid,
                    core: entry.core,
                    class: entry.class,
                    clock: t,
                    start: t,
                    halted: false,
                };
                let outcome = entry.proc.step(&mut ctx, &mut self.world);
                let mut new_clock = ctx.clock;
                let halted = ctx.halted;
                entry.class = ctx.class;
                if new_clock == t {
                    // Idle polling iteration.
                    new_clock += poll_quantum;
                }
                entry.clock = new_clock;
                self.now = t;
                self.steps += 1;
                if halted {
                    entry.live = false;
                    self.live -= 1;
                    continue 'sched;
                }
                // Burst fast path: re-step immediately if the advanced
                // clock still precedes every scheduled key in the exact
                // `(time, pid)` order the scheduler uses — then a push/pop
                // round-trip would pop this process right back, so skipping
                // it cannot change the step sequence. A `Handoff` ends the
                // burst so successor stages re-enter through the scheduler.
                // Pending cohort members (strictly earlier time) and the
                // pending buffer's front key both forbid bursting.
                if outcome != StepOutcome::Handoff && budget > 0 && new_clock < deadline {
                    let ahead = cohort_pos >= cohort.len()
                        && (pending.is_empty() || (new_clock, pid) < (pending_t, pending[0]))
                        && match self.wheel.peek() {
                            Some(next) => (new_clock, pid) < next,
                            None => true,
                        };
                    if ahead {
                        budget -= 1;
                        self.bursts += 1;
                        t = new_clock;
                        continue;
                    }
                }
                // Re-schedule: join the pending cohort when the key extends
                // its ascending pid run at the shared time, else the wheel.
                if pending.is_empty() {
                    pending_t = new_clock;
                    pending.push(pid);
                } else if new_clock == pending_t && *pending.last().expect("nonempty") < pid {
                    pending.push(pid);
                } else if new_clock < pending_t {
                    // A strictly earlier key: the current pending run is no
                    // longer the next-time candidate, park it in the wheel.
                    for &p in &pending {
                        self.wheel.push(pending_t, p);
                    }
                    pending.clear();
                    pending_t = new_clock;
                    pending.push(pid);
                } else {
                    self.wheel.push(new_clock, pid);
                }
                continue 'sched;
            }
        }
        // Park deferred keys in the wheel so the engine's schedule state is
        // self-contained between calls; all buffers go back empty (the
        // cohort is always fully consumed before the loop exits).
        for &p in &pending {
            self.wheel.push(pending_t, p);
        }
        pending.clear();
        cohort.clear();
        self.cohort = cohort;
        self.pending = pending;
        self.tie_buf = tie_buf;
        self.now = deadline.min(self.wheel.peek().map(|(t, _)| t).unwrap_or(deadline));
        self.steps - start_steps
    }

    /// Runs for `d` picoseconds past the current time.
    pub fn run_for(&mut self, d: u64) -> u64 {
        self.run_until(self.now + d)
    }

    /// Number of live processes (maintained counter; O(1)).
    pub fn live_procs(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ticker {
        period_ns: u64,
        fired: *mut Vec<(SimTime, usize)>,
        id: usize,
        remaining: usize,
    }

    impl Process<()> for Ticker {
        fn step(&mut self, ctx: &mut Ctx<'_>, _world: &mut ()) -> StepOutcome {
            // SAFETY: the test keeps the Vec alive for the whole run and the
            // engine is single-threaded.
            unsafe { (*self.fired).push((ctx.now(), self.id)) };
            ctx.compute_ns(self.period_ns);
            self.remaining -= 1;
            if self.remaining == 0 {
                ctx.halt();
            }
            StepOutcome::Progress
        }
    }

    #[test]
    fn steps_in_clock_order() {
        let mut fired: Vec<(SimTime, usize)> = Vec::new();
        let mut eng = Engine::new(MachineConfig::tiny(), 1, ());
        let p = &mut fired as *mut _;
        eng.spawn(
            None,
            StatClass::Other,
            Box::new(Ticker {
                period_ns: 30,
                fired: p,
                id: 0,
                remaining: 4,
            }),
        );
        eng.spawn(
            None,
            StatClass::Other,
            Box::new(Ticker {
                period_ns: 20,
                fired: p,
                id: 1,
                remaining: 6,
            }),
        );
        eng.run_until(SimTime::from_nanos(1_000));
        // Events must be globally time-ordered.
        for w in fired.windows(2) {
            assert!(w[0].0 <= w[1].0, "out of order: {:?}", w);
        }
        assert_eq!(fired.len(), 10);
        assert_eq!(eng.live_procs(), 0);
    }

    struct Idle;

    impl Process<u64> for Idle {
        fn step(&mut self, _ctx: &mut Ctx<'_>, world: &mut u64) -> StepOutcome {
            *world += 1;
            StepOutcome::Idle
        }
    }

    #[test]
    fn idle_steps_charge_poll_quantum() {
        let mut eng = Engine::new(MachineConfig::tiny(), 1, 0u64);
        eng.spawn(Some(0), StatClass::Other, Box::new(Idle));
        let quantum = eng.machine_ref().cfg.cost.poll_quantum;
        eng.run_until(SimTime(quantum * 10));
        assert_eq!(eng.world, 10);
    }

    struct Reader {
        addr: usize,
    }

    impl Process<Vec<u64>> for Reader {
        fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut Vec<u64>) -> StepOutcome {
            ctx.read(self.addr, 8);
            world.push(ctx.now().as_ps());
            StepOutcome::Progress
        }
    }

    #[test]
    fn memory_costs_flow_into_clock() {
        let mut eng = Engine::new(MachineConfig::tiny(), 1, Vec::new());
        eng.spawn(Some(0), StatClass::Other, Box::new(Reader { addr: 0x1000 }));
        let dram = eng.machine_ref().cfg.cost.dram;
        let l1 = eng.machine_ref().cfg.cost.l1_hit;
        eng.run_until(SimTime(dram + l1 * 3));
        // First step: DRAM miss; subsequent: L1 hits.
        assert_eq!(eng.world[0], dram);
        assert_eq!(eng.world[1], dram + l1);
    }

    #[test]
    fn lone_process_rides_the_burst_fast_path() {
        let mut eng = Engine::new(MachineConfig::tiny(), 1, 0u64);
        eng.spawn(Some(0), StatClass::Other, Box::new(Idle));
        let quantum = eng.machine_ref().cfg.cost.poll_quantum;
        eng.run_until(SimTime(quantum * 100));
        // Identical step count to the slow path, almost all of it burst.
        assert_eq!(eng.world, 100);
        assert!(eng.bursts() > 90, "only {} bursts", eng.bursts());
    }

    #[test]
    fn simultaneous_processes_step_in_pid_order() {
        let mut fired: Vec<(SimTime, usize)> = Vec::new();
        let mut eng = Engine::new(MachineConfig::tiny(), 1, ());
        let p = &mut fired as *mut _;
        for id in 0..3 {
            eng.spawn(
                None,
                StatClass::Other,
                Box::new(Ticker {
                    period_ns: 20,
                    fired: p,
                    id,
                    remaining: 4,
                }),
            );
        }
        eng.run_until(SimTime::from_micros(1));
        // All three share every wakeup time; the (time, pid) tie-break must
        // order them by pid within each instant, burst path or not.
        for (i, &(t, id)) in fired.iter().enumerate() {
            assert_eq!(t, SimTime::from_nanos(20 * (i as u64 / 3)));
            assert_eq!(id, i % 3);
        }
        assert_eq!(fired.len(), 12);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut fired: Vec<(SimTime, usize)> = Vec::new();
            let mut eng = Engine::new(MachineConfig::tiny(), 2, ());
            let p = &mut fired as *mut _;
            for id in 0..4 {
                eng.spawn(
                    None,
                    StatClass::Other,
                    Box::new(Ticker {
                        period_ns: 10 + id as u64 * 7,
                        fired: p,
                        id,
                        remaining: 50,
                    }),
                );
            }
            eng.run_until(SimTime::from_micros(100));
            fired
        };
        assert_eq!(run(), run());
    }
}
