//! Seeded fault injection: a [`FaultPlan`] perturbs the simulated fabric and
//! cores without breaking determinism.
//!
//! The plan models the disturbances a production deployment sees and the
//! paper's evaluation assumes away:
//!
//! * **receive-ring drops** — an RNIC receive descriptor is consumed but the
//!   payload is discarded (PFC storm, ring overrun);
//! * **duplicated deliveries** — the same request is delivered twice (link
//!   retransmit after a lost ack);
//! * **delayed DMA completions** — a delivery is pushed back by a fixed
//!   latency (PCIe backpressure);
//! * **per-core stall windows** — a pinned worker freezes for a span of
//!   simulated time (SMI, cgroup throttle, scheduler preemption);
//! * **lane corruption-detection events** — a popped CR→MR descriptor batch
//!   fails its checksum and must be re-read.
//!
//! All decisions come from a private splitmix64 stream seeded from the run
//! seed, so same-seed fault runs are byte-identical. A zero
//! [`FaultConfig`] never draws from the stream and never charges time, which
//! keeps fault-free runs bit-for-bit identical to builds without the
//! subsystem wired in.

use crate::time::SimTime;

/// One scheduled freeze of a pinned core: the core executes no steps in
/// `[at_ps, at_ps + dur_ps)`; its next step is deferred to the window end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallWindow {
    /// Core index (engine `spawn` core) the window applies to.
    pub core: usize,
    /// Window start, picoseconds of simulated time.
    pub at_ps: u64,
    /// Window length, picoseconds.
    pub dur_ps: u64,
}

/// Declarative description of the disturbance to inject. The default is the
/// zero plan: nothing fires, no randomness is consumed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Extra seed folded into the run seed for the fault stream.
    pub seed: u64,
    /// Probability a polled receive-ring request is dropped.
    pub drop_prob: f64,
    /// Probability a polled request is delivered twice.
    pub dup_prob: f64,
    /// Probability a polled request's DMA completion is delayed.
    pub delay_prob: f64,
    /// Delay applied to delayed (and duplicated) deliveries, picoseconds.
    pub delay_ps: u64,
    /// Probability a popped CR→MR descriptor batch trips corruption
    /// detection and is re-read.
    pub corrupt_prob: f64,
    /// Scheduled per-core freezes.
    pub stalls: Vec<StallWindow>,
}

impl FaultConfig {
    /// Whether any receive-path fault can fire.
    pub fn net_active(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_prob > 0.0
    }

    /// Whether the whole plan is the zero plan.
    pub fn is_zero(&self) -> bool {
        !self.net_active() && self.corrupt_prob == 0.0 && self.stalls.is_empty()
    }
}

/// Outcome of the receive-path fault draw for one polled request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvFate {
    /// Deliver normally.
    Deliver,
    /// Discard the request; the client must retransmit.
    Drop,
    /// Deliver now and redeliver a copy `0.delay` ps later.
    Duplicate {
        /// Redelivery offset in picoseconds.
        delay: u64,
    },
    /// Push the delivery back by `0.delay` ps.
    Delay {
        /// Delivery offset in picoseconds.
        delay: u64,
    },
}

/// Instantiated fault plan owned by the [`crate::engine::Machine`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: u64,
    events: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::inactive()
    }
}

/// splitmix64: the tiny, well-mixed generator used for all fault draws. The
/// sim crate keeps its own copy so it cannot drift with workload RNGs.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a u64 draw to a uniform f64 in [0, 1).
#[inline]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Instantiates `cfg`, folding `run_seed` into the fault stream so two
    /// runs differing only in seed see different fault placements.
    pub fn new(cfg: FaultConfig, run_seed: u64) -> Self {
        let mut state = run_seed ^ cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let rng = splitmix64(&mut state);
        FaultPlan {
            cfg,
            rng,
            events: 0,
        }
    }

    /// The zero plan: injects nothing, draws nothing.
    pub fn inactive() -> Self {
        FaultPlan {
            cfg: FaultConfig::default(),
            rng: 0,
            events: 0,
        }
    }

    /// The plan's configuration.
    pub fn cfg(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether receive-path faults can fire (cheap guard so the hot pump
    /// loop skips the draw entirely on the zero plan).
    #[inline]
    pub fn net_active(&self) -> bool {
        self.cfg.net_active()
    }

    /// Whether corruption-detection events can fire.
    #[inline]
    pub fn corrupt_active(&self) -> bool {
        self.cfg.corrupt_prob > 0.0
    }

    /// Whether any stall window is scheduled.
    #[inline]
    pub fn has_stalls(&self) -> bool {
        !self.cfg.stalls.is_empty()
    }

    /// Total fault events fired so far (drops + dups + delays + corruptions
    /// + stall deferrals); the tuner reads this as its pressure signal.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Draws the fate of one polled receive-ring request. Call only when
    /// [`Self::net_active`]; one draw decides drop/dup/delay together.
    pub fn recv_fate(&mut self) -> RecvFate {
        let u = unit(splitmix64(&mut self.rng));
        let delay = self.cfg.delay_ps.max(1);
        if u < self.cfg.drop_prob {
            self.events += 1;
            RecvFate::Drop
        } else if u < self.cfg.drop_prob + self.cfg.dup_prob {
            self.events += 1;
            RecvFate::Duplicate { delay }
        } else if u < self.cfg.drop_prob + self.cfg.dup_prob + self.cfg.delay_prob {
            self.events += 1;
            RecvFate::Delay { delay }
        } else {
            RecvFate::Deliver
        }
    }

    /// Draws whether one popped descriptor batch trips corruption
    /// detection. Call only when [`Self::corrupt_active`].
    pub fn corrupt_pop(&mut self) -> bool {
        let hit = unit(splitmix64(&mut self.rng)) < self.cfg.corrupt_prob;
        if hit {
            self.events += 1;
        }
        hit
    }

    /// If `core` is inside a stall window at time `t`, returns the window
    /// end the core's next step must be deferred to.
    pub fn stall_until(&self, core: usize, t: SimTime) -> Option<SimTime> {
        let ps = t.as_ps();
        self.cfg
            .stalls
            .iter()
            .filter(|w| w.core == core && w.at_ps <= ps && ps < w.at_ps + w.dur_ps)
            .map(|w| SimTime(w.at_ps + w.dur_ps))
            .max()
    }

    /// Whether any core is inside a stall window at time `t` (the tuner's
    /// "machine is disturbed" check).
    pub fn stall_active(&self, t: SimTime) -> bool {
        let ps = t.as_ps();
        self.cfg
            .stalls
            .iter()
            .any(|w| w.at_ps <= ps && ps < w.at_ps + w.dur_ps)
    }

    /// Records a stall deferral into the event count (called by the engine).
    pub fn note_stall_defer(&mut self) {
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_inert() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_zero());
        let plan = FaultPlan::new(cfg, 42);
        assert!(!plan.net_active());
        assert!(!plan.corrupt_active());
        assert!(!plan.has_stalls());
        assert_eq!(plan.events(), 0);
        assert_eq!(plan.stall_until(0, SimTime(123)), None);
    }

    #[test]
    fn fate_stream_is_seed_deterministic() {
        let cfg = FaultConfig {
            drop_prob: 0.1,
            dup_prob: 0.1,
            delay_prob: 0.1,
            delay_ps: 1_000_000,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg.clone(), 7);
        let mut b = FaultPlan::new(cfg.clone(), 7);
        let fa: Vec<_> = (0..1000).map(|_| a.recv_fate()).collect();
        let fb: Vec<_> = (0..1000).map(|_| b.recv_fate()).collect();
        assert_eq!(fa, fb);
        let mut c = FaultPlan::new(cfg, 8);
        let fc: Vec<_> = (0..1000).map(|_| c.recv_fate()).collect();
        assert_ne!(fa, fc, "different seeds produced identical fault streams");
    }

    #[test]
    fn fate_rates_roughly_match_probabilities() {
        let cfg = FaultConfig {
            drop_prob: 0.2,
            dup_prob: 0.1,
            delay_prob: 0.05,
            delay_ps: 500_000,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg, 42);
        let n = 20_000;
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        for _ in 0..n {
            match plan.recv_fate() {
                RecvFate::Drop => drops += 1,
                RecvFate::Duplicate { .. } => dups += 1,
                RecvFate::Delay { .. } => delays += 1,
                RecvFate::Deliver => {}
            }
        }
        let frac = |c: i32| c as f64 / n as f64;
        assert!(
            (frac(drops) - 0.2).abs() < 0.02,
            "drop rate {}",
            frac(drops)
        );
        assert!((frac(dups) - 0.1).abs() < 0.02, "dup rate {}", frac(dups));
        assert!(
            (frac(delays) - 0.05).abs() < 0.02,
            "delay rate {}",
            frac(delays)
        );
        assert_eq!(plan.events() as i32, drops + dups + delays);
    }

    #[test]
    fn stall_windows_cover_their_span() {
        let cfg = FaultConfig {
            stalls: vec![
                StallWindow {
                    core: 2,
                    at_ps: 1_000,
                    dur_ps: 500,
                },
                StallWindow {
                    core: 2,
                    at_ps: 1_200,
                    dur_ps: 900,
                },
            ],
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg, 1);
        assert_eq!(plan.stall_until(2, SimTime(999)), None);
        assert_eq!(plan.stall_until(2, SimTime(1_000)), Some(SimTime(1_500)));
        // Overlapping windows defer to the latest end.
        assert_eq!(plan.stall_until(2, SimTime(1_300)), Some(SimTime(2_100)));
        assert_eq!(plan.stall_until(2, SimTime(2_100)), None);
        assert_eq!(plan.stall_until(0, SimTime(1_100)), None);
        assert!(plan.stall_active(SimTime(1_100)));
        assert!(!plan.stall_active(SimTime(3_000)));
    }
}
