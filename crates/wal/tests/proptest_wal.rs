//! Property tests for the WAL and sorted-run formats.
//!
//! The crash fault model tears the log at an arbitrary byte and may flip a
//! bit in the torn span, so the format's contract is: *any* prefix of the
//! byte stream, however damaged past the last sealed group, scans to a clean
//! prefix of the committed records — never garbage, never records past the
//! damage — and recovery over the scanned prefix is idempotent.

use proptest::collection::vec;
use proptest::prelude::*;
use utps_wal::{encode_group, recover, scan_wal, SortedRun, WalOp, WalRecord};

/// Builds records with dense `wal_seq` and groups them by `chunks` sizes.
fn build_log(
    specs: &[(u32, u64, u64, bool, Vec<u8>)],
    chunks: &[usize],
) -> (Vec<WalRecord>, Vec<u8>, Vec<usize>) {
    let records: Vec<WalRecord> = specs
        .iter()
        .enumerate()
        .map(|(i, (client, client_seq, key, is_del, value))| WalRecord {
            wal_seq: i as u64 + 1,
            client: *client,
            client_seq: *client_seq,
            key: *key,
            op: if *is_del { WalOp::Delete } else { WalOp::Put },
            value: if *is_del { vec![] } else { value.clone() },
        })
        .collect();
    let mut log = Vec::new();
    let mut boundaries = vec![0];
    let mut at = 0usize;
    let mut group_seq = 0;
    while at < records.len() {
        let take = chunks[group_seq % chunks.len()].clamp(1, records.len() - at);
        log.extend(encode_group(group_seq as u64 + 1, &records[at..at + take]));
        boundaries.push(log.len());
        at += take;
        group_seq += 1;
    }
    (records, log, boundaries)
}

fn spec_strategy() -> impl Strategy<Value = (u32, u64, u64, bool, Vec<u8>)> {
    (
        0u32..4,
        any::<u64>(),
        0u64..64,
        any::<bool>(),
        vec(any::<u8>(), 0..32),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary record sequences round-trip through arbitrary groupings.
    #[test]
    fn records_round_trip(
        specs in vec(spec_strategy(), 1..40),
        chunks in vec(1usize..7, 1..8),
    ) {
        let (records, log, _) = build_log(&specs, &chunks);
        let scan = scan_wal(&log);
        prop_assert_eq!(scan.records, records);
        prop_assert_eq!(scan.valid_len, log.len());
        prop_assert!(!scan.truncated);
    }

    /// A torn tail truncates at the last fully sealed group: exactly the
    /// groups wholly before the cut survive, nothing past the cut replays.
    #[test]
    fn torn_tail_truncates_cleanly(
        specs in vec(spec_strategy(), 1..40),
        chunks in vec(1usize..7, 1..8),
        cut_bp in 0u32..10_000,
    ) {
        let (records, log, boundaries) = build_log(&specs, &chunks);
        let cut = log.len() * cut_bp as usize / 10_000;
        let scan = scan_wal(&log[..cut]);
        // valid_len is the largest group boundary ≤ cut.
        let want_len = *boundaries.iter().rev().find(|&&b| b <= cut).unwrap();
        prop_assert_eq!(scan.valid_len, want_len);
        prop_assert_eq!(scan.truncated, want_len < cut);
        // Surviving records are exactly the groups before the boundary — a
        // contiguous prefix of the committed sequence.
        let survivors = scan.records.len();
        prop_assert!(survivors <= records.len());
        prop_assert_eq!(&scan.records[..], &records[..survivors]);
        if want_len < log.len() {
            // The partially-written group contributed nothing.
            let next_boundary = boundaries.iter().position(|&b| b == want_len).unwrap();
            let full_groups: usize = (0..next_boundary)
                .map(|g| chunks[g % chunks.len()].clamp(1, records.len()))
                .sum::<usize>()
                .min(records.len());
            prop_assert!(survivors <= full_groups);
        }
    }

    /// A single flipped bit anywhere is detected: the scan still returns a
    /// clean prefix of the committed records and never fabricates data.
    #[test]
    fn bit_flip_never_yields_garbage(
        specs in vec(spec_strategy(), 1..30),
        chunks in vec(1usize..5, 1..6),
        pos_bp in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let (records, log, _) = build_log(&specs, &chunks);
        let pos = (log.len() - 1) * pos_bp as usize / 10_000;
        let mut bad = log.clone();
        bad[pos] ^= 1 << bit;
        let scan = scan_wal(&bad);
        // Whatever survives is a prefix of the true records, and the group
        // containing the flip never replays.
        prop_assert!(scan.records.len() <= records.len());
        prop_assert_eq!(&scan.records[..], &records[..scan.records.len()]);
        prop_assert!(scan.valid_len <= pos || scan.valid_len == bad.len());
        // Detection: if the flip landed inside the valid region boundary it
        // must truncate (checksum catches it) — the only way the full log
        // still scans is if magic/crc collision is impossible, which FNV
        // guarantees for single-bit flips within a checksummed span.
        prop_assert!(scan.valid_len <= pos || scan.records.len() == records.len());
    }

    /// Recovery is idempotent: recovering the valid prefix again yields the
    /// identical state (items, acked set, next seq).
    #[test]
    fn recovery_idempotent(
        specs in vec(spec_strategy(), 1..40),
        chunks in vec(1usize..7, 1..8),
        cut_bp in 0u32..10_000,
        fill in vec((0u64..64, vec(any::<u8>(), 0..8)), 0..16),
    ) {
        let (_, log, _) = build_log(&specs, &chunks);
        let cut = log.len() * cut_bp as usize / 10_000;
        let once = recover(fill.clone(), None, &log[..cut]);
        let twice = recover(fill, None, &log[..once.wal_valid_len]);
        prop_assert_eq!(once.items, twice.items);
        prop_assert_eq!(once.acked, twice.acked);
        prop_assert_eq!(once.next_wal_seq, twice.next_wal_seq);
        prop_assert_eq!(once.replayed, twice.replayed);
        prop_assert!(!twice.truncated);
    }

    /// Sorted runs round-trip; any single-bit flip or truncation is refused.
    #[test]
    fn run_decode_rejects_damage(
        entries in vec((any::<u64>(), vec(any::<u8>(), 0..16)), 0..24),
        floor in any::<u64>(),
        pos_bp in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let mut sorted: Vec<(u64, Vec<u8>)> = entries;
        sorted.sort_by_key(|&(k, _)| k);
        sorted.dedup_by_key(|e| e.0);
        let run = SortedRun { wal_floor: floor, entries: sorted };
        let bytes = run.encode();
        prop_assert_eq!(SortedRun::decode(&bytes).as_ref(), Some(&run));
        let pos = (bytes.len() - 1) * pos_bp as usize / 10_000;
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;
        prop_assert_eq!(SortedRun::decode(&bad), None);
        if bytes.len() > 1 {
            prop_assert_eq!(SortedRun::decode(&bytes[..bytes.len() - 1]), None);
        }
    }
}
