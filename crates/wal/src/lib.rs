//! Write-ahead log and sorted-run formats for the simulated persistence tier.
//!
//! The durable tier stores two kinds of segments on the [`SimDevice`]:
//!
//! * an append-only **WAL** of group-committed records — every mutation the
//!   MR layer applies appends one [`WalRecord`]; records are framed into
//!   groups, each sealed with a group checksum and a commit marker, and a
//!   group becomes the durability point for every record inside it;
//! * a compacted read-only **sorted run** ([`SortedRun`]) of evicted cold
//!   items, rewritten wholesale by the background compactor and looked up on
//!   hot-cache + index miss.
//!
//! Both formats carry FNV-1a checksums at every level, so a torn tail (the
//! seeded crash fault) or a flipped bit is *detected* and the log is cleanly
//! truncated at the last valid group — never replayed past. [`recover`]
//! rebuilds the post-crash DRAM state, the cold-tier tombstone set and the
//! exactly-once dedup floor from `initial fill + run + WAL tail`, and is
//! idempotent: recovering the recovered log yields the same state.
//!
//! This crate is pure data-plumbing: no simulated time, no I/O — the engine
//! wiring (latency, group timing, crash hook) lives in utps-sim/utps-core.
//!
//! [`SimDevice`]: ../utps_sim/device/struct.SimDevice.html

use std::collections::BTreeMap;

/// Magic opening every WAL group frame.
pub const GROUP_MAGIC: [u8; 4] = *b"UWAL";
/// Magic closing a committed group.
pub const COMMIT_MAGIC: [u8; 4] = *b"GCMT";
/// Magic opening a sorted-run segment.
pub const RUN_MAGIC: [u8; 4] = *b"URUN";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` (same family as the oracle's digests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The mutation a WAL record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Insert/overwrite `key` with the record's value bytes.
    Put,
    /// Remove `key`; the value is empty.
    Delete,
}

/// One logged mutation, in the order the MR layer applied it.
///
/// `wal_seq` is the *global apply order* across all MR workers — groups from
/// different workers hold non-contiguous seqs, and recovery sorts by it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Global apply-order sequence number (dense, starts at 1).
    pub wal_seq: u64,
    /// Issuing client id (dedup identity).
    pub client: u32,
    /// Client-local request sequence (dedup identity).
    pub client_seq: u64,
    /// The key mutated.
    pub key: u64,
    /// Put or delete.
    pub op: WalOp,
    /// Value bytes (empty for deletes).
    pub value: Vec<u8>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let v = bytes.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(v.try_into().unwrap()))
}

fn get_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let v = bytes.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(v.try_into().unwrap()))
}

impl WalRecord {
    /// Encodes the record (with its trailing per-record checksum) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        put_u64(out, self.wal_seq);
        put_u32(out, self.client);
        put_u64(out, self.client_seq);
        put_u64(out, self.key);
        out.push(match self.op {
            WalOp::Put => 0,
            WalOp::Delete => 1,
        });
        put_u32(out, self.value.len() as u32);
        out.extend_from_slice(&self.value);
        let crc = fnv1a(&out[start..]);
        put_u64(out, crc);
    }

    /// Decodes one record at `*at`, verifying its checksum. Advances `*at`
    /// past the record on success; on any mismatch returns `None` with `*at`
    /// unspecified (the caller discards the whole group).
    pub fn decode(bytes: &[u8], at: &mut usize) -> Option<WalRecord> {
        let start = *at;
        let wal_seq = get_u64(bytes, at)?;
        let client = get_u32(bytes, at)?;
        let client_seq = get_u64(bytes, at)?;
        let key = get_u64(bytes, at)?;
        let op = match bytes.get(*at)? {
            0 => WalOp::Put,
            1 => WalOp::Delete,
            _ => return None,
        };
        *at += 1;
        let len = get_u32(bytes, at)? as usize;
        let value = bytes.get(*at..*at + len)?.to_vec();
        *at += len;
        let body_end = *at;
        let crc = get_u64(bytes, at)?;
        if crc != fnv1a(&bytes[start..body_end]) {
            return None;
        }
        Some(WalRecord {
            wal_seq,
            client,
            client_seq,
            key,
            op,
            value,
        })
    }
}

/// Encodes one committed group: magic, group seq, record count, the records
/// (each self-checksummed), a whole-group checksum, and the commit marker.
/// The group is the durability unit — the tier acks an op only once the
/// device write of its group has completed.
pub fn encode_group(group_seq: u64, records: &[WalRecord]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(64 + records.iter().map(|r| r.value.len() + 64).sum::<usize>());
    out.extend_from_slice(&GROUP_MAGIC);
    put_u64(&mut out, group_seq);
    put_u32(&mut out, records.len() as u32);
    for r in records {
        r.encode(&mut out);
    }
    let crc = fnv1a(&out);
    put_u64(&mut out, crc);
    out.extend_from_slice(&COMMIT_MAGIC);
    out
}

/// The result of scanning a (possibly torn) WAL byte stream.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// All records from fully valid groups, in on-log order.
    pub records: Vec<WalRecord>,
    /// Number of valid groups.
    pub groups: u64,
    /// Byte length of the valid prefix (scanning `bytes[..valid_len]` again
    /// yields the identical result — truncation is clean and idempotent).
    pub valid_len: usize,
    /// Whether trailing bytes past the last valid group were discarded.
    pub truncated: bool,
}

/// Scans a WAL byte stream, stopping at the first invalid group. A group is
/// valid only if its magic, every per-record checksum, the group checksum
/// and the commit marker all verify — a torn tail or bit flip anywhere in a
/// group discards that group and everything after it.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    let mut at = 0usize;
    'groups: while at < bytes.len() {
        let group_start = at;
        if bytes.get(at..at + 4) != Some(&GROUP_MAGIC) {
            break;
        }
        let mut cur = at + 4;
        let Some(_group_seq) = get_u64(bytes, &mut cur) else {
            break;
        };
        let Some(count) = get_u32(bytes, &mut cur) else {
            break;
        };
        let mut records = Vec::with_capacity(count as usize);
        for _ in 0..count {
            match WalRecord::decode(bytes, &mut cur) {
                Some(r) => records.push(r),
                None => break 'groups,
            }
        }
        let body_end = cur;
        let Some(crc) = get_u64(bytes, &mut cur) else {
            break;
        };
        if crc != fnv1a(&bytes[group_start..body_end]) {
            break;
        }
        if bytes.get(cur..cur + 4) != Some(&COMMIT_MAGIC) {
            break;
        }
        at = cur + 4;
        scan.records.extend(records);
        scan.groups += 1;
        scan.valid_len = at;
    }
    scan.truncated = scan.valid_len < bytes.len();
    scan
}

/// A compacted, read-only sorted run of evicted cold items.
///
/// `wal_floor` is the WAL seq the compactor observed when it sealed the run:
/// every run entry reflects all mutations with `wal_seq < wal_floor`, and
/// the compactor guarantees no run key was resident in DRAM at seal time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SortedRun {
    /// WAL seq floor: run entries fold in every mutation below it.
    pub wal_floor: u64,
    /// `(key, value)` pairs sorted by key.
    pub entries: Vec<(u64, Vec<u8>)>,
}

impl SortedRun {
    /// Binary-search lookup.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| &self.entries[i].1[..])
    }

    /// Whether the run holds `key`.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.binary_search_by_key(&key, |&(k, _)| k).is_ok()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total value bytes.
    pub fn value_bytes(&self) -> usize {
        self.entries.iter().map(|(_, v)| v.len()).sum()
    }

    /// Encodes the run: magic, floor, count, sorted entries, trailing
    /// whole-segment checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.value_bytes() + self.len() * 12);
        out.extend_from_slice(&RUN_MAGIC);
        put_u64(&mut out, self.wal_floor);
        put_u32(&mut out, self.entries.len() as u32);
        for (k, v) in &self.entries {
            put_u64(&mut out, *k);
            put_u32(&mut out, v.len() as u32);
            out.extend_from_slice(v);
        }
        let crc = fnv1a(&out);
        put_u64(&mut out, crc);
        out
    }

    /// Decodes a run segment; `None` on any damage (a torn run write is
    /// simply ignored at recovery — the previous run is still intact).
    pub fn decode(bytes: &[u8]) -> Option<SortedRun> {
        if bytes.get(..4) != Some(&RUN_MAGIC) {
            return None;
        }
        let mut at = 4usize;
        let wal_floor = get_u64(bytes, &mut at)?;
        let count = get_u32(bytes, &mut at)? as usize;
        let mut entries = Vec::with_capacity(count);
        let mut last_key = None;
        for _ in 0..count {
            let k = get_u64(bytes, &mut at)?;
            if let Some(prev) = last_key {
                if k <= prev {
                    return None;
                }
            }
            last_key = Some(k);
            let len = get_u32(bytes, &mut at)? as usize;
            let v = bytes.get(at..at + len)?.to_vec();
            at += len;
            entries.push((k, v));
        }
        let body_end = at;
        let crc = get_u64(bytes, &mut at)?;
        if at != bytes.len() || crc != fnv1a(&bytes[..body_end]) {
            return None;
        }
        Some(SortedRun { wal_floor, entries })
    }
}

/// The state [`recover`] rebuilds from `initial fill + run + WAL tail`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovered {
    /// Post-recovery DRAM contents (keys served cold by the run excluded).
    pub items: BTreeMap<u64, Vec<u8>>,
    /// Run keys deleted at or after the run's floor — the cold tier must
    /// not resurrect these.
    pub tombstones: Vec<u64>,
    /// Every `(client, client_seq)` whose record survived — the exactly-once
    /// dedup floor is rebuilt by replaying these.
    pub acked: Vec<(u32, u64)>,
    /// Next WAL seq to assign (max surviving seq + 1).
    pub next_wal_seq: u64,
    /// Valid WAL prefix length (remount exactly these bytes).
    pub wal_valid_len: usize,
    /// Whether the WAL had a torn/corrupt tail.
    pub truncated: bool,
    /// Records replayed.
    pub replayed: u64,
    /// Valid groups scanned.
    pub groups: u64,
}

/// Replays a WAL tail over the last compacted run and the initial fill.
///
/// Semantics: DRAM is rebuilt as `initial fill + every surviving record in
/// `wal_seq` order`; then every run key whose last surviving mutation is
/// older than the run floor (or untouched) is *evicted* from DRAM — the run
/// holds its authoritative value and the cold path serves it. Run keys whose
/// final state is "deleted at or after the floor" become tombstones.
///
/// Gaps in the seq stream are safe: a lost group's records were never
/// ackable (the group-commit barrier holds completions until the contiguous
/// durable prefix covers them), so dropping them cannot lose an acked op.
pub fn recover<I>(initial: I, run: Option<&SortedRun>, wal: &[u8]) -> Recovered
where
    I: IntoIterator<Item = (u64, Vec<u8>)>,
{
    let scan = scan_wal(wal);
    let mut items: BTreeMap<u64, Vec<u8>> = initial.into_iter().collect();
    let mut records = scan.records;
    records.sort_by_key(|r| r.wal_seq);

    let mut acked = Vec::with_capacity(records.len());
    let mut last_touch: BTreeMap<u64, u64> = BTreeMap::new();
    let mut next_wal_seq = 1;
    for r in &records {
        acked.push((r.client, r.client_seq));
        last_touch.insert(r.key, r.wal_seq);
        next_wal_seq = next_wal_seq.max(r.wal_seq + 1);
        match r.op {
            WalOp::Put => {
                items.insert(r.key, r.value.clone());
            }
            WalOp::Delete => {
                items.remove(&r.key);
            }
        }
    }

    let mut tombstones = Vec::new();
    if let Some(run) = run {
        for (k, _) in &run.entries {
            let touched_past_floor = last_touch.get(k).is_some_and(|&s| s >= run.wal_floor);
            if !touched_past_floor {
                // Run value is authoritative; the key lives cold.
                items.remove(k);
            } else if !items.contains_key(k) {
                // Deleted after the floor: keep the run from resurrecting it.
                tombstones.push(*k);
            }
        }
    }

    Recovered {
        items,
        tombstones,
        acked,
        next_wal_seq,
        wal_valid_len: scan.valid_len,
        truncated: scan.truncated,
        replayed: records.len() as u64,
        groups: scan.groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, key: u64, val: &[u8]) -> WalRecord {
        WalRecord {
            wal_seq: seq,
            client: 1,
            client_seq: seq,
            key,
            op: WalOp::Put,
            value: val.to_vec(),
        }
    }

    fn del(seq: u64, key: u64) -> WalRecord {
        WalRecord {
            wal_seq: seq,
            client: 1,
            client_seq: seq,
            key,
            op: WalOp::Delete,
            value: vec![],
        }
    }

    #[test]
    fn group_round_trip() {
        let recs = vec![rec(1, 10, b"aa"), del(2, 11), rec(3, 12, b"")];
        let bytes = encode_group(7, &recs);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.groups, 1);
        assert_eq!(scan.valid_len, bytes.len());
        assert!(!scan.truncated);
    }

    #[test]
    fn torn_tail_truncates_at_last_valid_group() {
        let mut log = encode_group(1, &[rec(1, 5, b"x")]);
        let g1 = log.len();
        log.extend(encode_group(2, &[rec(2, 6, b"y")]));
        let g2 = log.len();
        log.extend(encode_group(3, &[rec(3, 7, b"z")]));
        for cut in g2 + 1..log.len() {
            let scan = scan_wal(&log[..cut]);
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert_eq!(scan.valid_len, g2);
            assert!(scan.truncated);
        }
        let scan = scan_wal(&log[..g1 + 3]);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn bit_flip_detected() {
        let mut log = encode_group(1, &[rec(1, 5, b"hello")]);
        log.extend(encode_group(2, &[rec(2, 6, b"world")]));
        let g1 = encode_group(1, &[rec(1, 5, b"hello")]).len();
        for bit in 0..8 {
            let mut bad = log.clone();
            bad[g1 + 20] ^= 1 << bit;
            let scan = scan_wal(&bad);
            assert_eq!(scan.records.len(), 1, "flip bit {bit} undetected");
            assert!(scan.truncated);
        }
    }

    #[test]
    fn run_round_trip_and_damage() {
        let run = SortedRun {
            wal_floor: 42,
            entries: vec![(1, b"a".to_vec()), (5, b"bb".to_vec()), (9, vec![])],
        };
        let bytes = run.encode();
        assert_eq!(SortedRun::decode(&bytes), Some(run.clone()));
        assert_eq!(run.get(5), Some(&b"bb"[..]));
        assert_eq!(run.get(2), None);
        let mut bad = bytes.clone();
        bad[10] ^= 1;
        assert_eq!(SortedRun::decode(&bad), None);
        assert_eq!(SortedRun::decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn recover_replays_over_run_and_fill() {
        // Initial fill: keys 0..4 = "i". Run (floor 10): keys 1, 2 evicted.
        let fill = (0..4u64).map(|k| (k, b"i".to_vec()));
        let run = SortedRun {
            wal_floor: 10,
            entries: vec![(1, b"cold1".to_vec()), (2, b"cold2".to_vec())],
        };
        // WAL: pre-floor put of 1 (stale vs run), post-floor put of 2,
        // post-floor delete of 3.
        let mut log = encode_group(1, &[rec(7, 1, b"stale")]);
        log.extend(encode_group(2, &[rec(11, 2, b"fresh"), del(12, 3)]));
        let r = recover(fill, Some(&run), &log);
        // Key 1: run authoritative, evicted from DRAM.
        assert!(!r.items.contains_key(&1));
        // Key 2: post-floor put wins, lives in DRAM.
        assert_eq!(r.items.get(&2).map(|v| &v[..]), Some(&b"fresh"[..]));
        // Key 3: deleted; not a run key, no tombstone.
        assert!(!r.items.contains_key(&3));
        assert_eq!(r.tombstones, Vec::<u64>::new());
        assert_eq!(r.items.get(&0).map(|v| &v[..]), Some(&b"i"[..]));
        assert_eq!(r.next_wal_seq, 13);
        assert_eq!(r.acked.len(), 3);
    }

    #[test]
    fn post_floor_delete_of_run_key_tombstones() {
        let run = SortedRun {
            wal_floor: 5,
            entries: vec![(8, b"cold".to_vec())],
        };
        let log = encode_group(1, &[del(6, 8)]);
        let r = recover(std::iter::empty(), Some(&run), &log);
        assert!(!r.items.contains_key(&8));
        assert_eq!(r.tombstones, vec![8]);
    }

    #[test]
    fn recovery_idempotent() {
        let fill: Vec<(u64, Vec<u8>)> = (0..8u64).map(|k| (k, vec![0xab; 4])).collect();
        let mut log = encode_group(1, &[rec(1, 2, b"a"), rec(2, 3, b"b")]);
        log.extend(encode_group(2, &[del(3, 2)]));
        log.extend_from_slice(b"torn garbage");
        let once = recover(fill.clone(), None, &log);
        let twice = recover(fill, None, &log[..once.wal_valid_len]);
        assert!(once.truncated);
        assert!(!twice.truncated);
        assert_eq!(once.items, twice.items);
        assert_eq!(once.acked, twice.acked);
        assert_eq!(once.next_wal_seq, twice.next_wal_seq);
    }
}
