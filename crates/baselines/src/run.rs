//! Unified dispatcher over every system in the evaluation.

use utps_core::client::DriverState;
use utps_core::experiment::{run_utps, RunConfig, RunResult, SystemKind};
use utps_core::stage::PipelineRuntime;
use utps_sim::time::SECS;
use utps_sim::{Engine, StatClass};

use crate::basekv::run_basekv;
use crate::erpckv::run_erpckv;
use crate::passive::{run_racehash, run_sherman};

/// Runs `system` under `cfg`.
pub fn run(system: SystemKind, cfg: &RunConfig) -> RunResult {
    match system {
        SystemKind::Utps => run_utps(cfg),
        SystemKind::BaseKv => run_basekv(cfg),
        SystemKind::ErpcKv => run_erpckv(cfg),
        SystemKind::RaceHash => run_racehash(cfg),
        SystemKind::Sherman => run_sherman(cfg),
    }
}

/// The one baseline runner: builds a [`PipelineRuntime`] over `world`, lets
/// the system spawn its stages and clients, runs the warmup → reset →
/// measure protocol (baselines reset only the cache counters, which the
/// runtime does itself), and assembles the [`RunResult`] from the driver.
pub fn run_pipeline<W: 'static>(
    cfg: &RunConfig,
    cores: usize,
    world: W,
    spawn: impl FnOnce(&mut PipelineRuntime<W>),
    driver: impl Fn(&W) -> &DriverState,
) -> RunResult {
    let mut rt = PipelineRuntime::new(cfg, cores, world);
    spawn(&mut rt);
    rt.run(|_| {});
    let mut eng = rt.into_engine();
    result_from_driver(cfg, &mut eng, driver)
}

/// Builds a [`RunResult`] for a baseline world from its driver state and the
/// machine's metrics (baselines have no CR/MR split; per-class rates fall
/// into the combined number).
pub fn result_from_driver<W>(
    cfg: &RunConfig,
    eng: &mut Engine<W>,
    driver: impl Fn(&W) -> &DriverState,
) -> RunResult {
    let metrics = eng.machine().cache.metrics.clone();
    utps_core::experiment::pin_fault_counters(&mut eng.machine().registry);
    let snapshot = eng
        .machine()
        .registry
        .snapshot(utps_sim::time::SimTime(cfg.warmup + cfg.duration));
    let d = driver(&eng.world);
    let hist = d.merged_hist();
    let completed = d.completed();
    let secs = cfg.duration as f64 / SECS as f64;
    let timeline = utps_core::experiment::render_timeline(&d.timeline, cfg.timeline_interval);
    let (history_digest, oracle) = utps_core::experiment::oracle_results(cfg, d);
    let schedule_trace = eng.machine_ref().schedule.trace().to_vec();
    RunResult {
        mops: completed as f64 / secs / 1e6,
        completed,
        p50_ns: hist.percentile(50.0),
        p99_ns: hist.percentile(99.0),
        mean_ns: hist.mean(),
        llc_miss_cr: metrics.class[StatClass::Cr as usize].llc_miss_rate(),
        llc_miss_mr: metrics.class[StatClass::Mr as usize].llc_miss_rate(),
        llc_miss_all: metrics.combined().llc_miss_rate(),
        cr_local_frac: 0.0,
        final_n_cr: 0,
        workers: cfg.workers,
        final_cache_items: 0,
        final_mr_ways: 0,
        timeline,
        tuner_events: Vec::new(),
        reconfigs: 0,
        not_found: d.clients.iter().map(|c| c.not_found).sum(),
        issued: d.clients.iter().map(|c| c.issued).sum(),
        completed_total: d.completed_total(),
        retransmits: d.clients.iter().map(|c| c.retransmits).sum(),
        dup_resps: d.clients.iter().map(|c| c.dup_resps).sum(),
        failed: d.clients.iter().map(|c| c.failed).sum(),
        stage_metrics: Some(snapshot),
        tuner_probes: Vec::new(),
        history_digest,
        oracle,
        schedule_trace,
        cluster: None,
        tier: None,
        engine_steps: eng.steps(),
        engine_bursts: eng.bursts(),
        engine_wheel_cascades: eng.wheel_cascades(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utps_index::IndexKind;
    use utps_sim::config::MachineConfig;
    use utps_sim::time::MICROS;

    #[test]
    fn dispatcher_reaches_every_system() {
        let mut cfg = RunConfig {
            keys: 10_000,
            workers: 3,
            n_cr: 1,
            clients: 4,
            pipeline: 2,
            warmup: 300 * MICROS,
            duration: 700 * MICROS,
            machine: MachineConfig::tiny(),
            ..RunConfig::default()
        };
        for system in [
            SystemKind::Utps,
            SystemKind::BaseKv,
            SystemKind::ErpcKv,
            SystemKind::Sherman,
        ] {
            let r = run(system, &cfg);
            assert!(r.completed > 50, "{}: {} ops", system.name(), r.completed);
        }
        cfg.index = IndexKind::Hash;
        let r = run(SystemKind::RaceHash, &cfg);
        assert!(r.completed > 50, "RaceHash: {} ops", r.completed);
    }
}
