//! eRPCKV: eRPC-style RPC + share-nothing dispatch (§5.1).
//!
//! Differences from BaseKV, following the paper:
//!
//! * **per-worker receive queues** — eRPC allocates ~15 MB of buffers per
//!   worker thread; the large footprint is modeled with a genuinely large
//!   per-worker ring (address range ≫ LLC), while the leaner per-message
//!   software path lowers the parse cost;
//! * **share-nothing** — clients (modeled at the NIC router) direct each
//!   request to worker `key mod n`, so each worker exclusively owns a shard:
//!   no lock contention or coherence traffic ever arises on its items, but
//!   skewed workloads overload the shard holding the hot keys while other
//!   workers idle — the imbalance the paper measures.
//!
//! On the stage engine, eRPCKV is a dispatch stage (the NIC-side
//! [`ErpcWorld::route`], free for the CPUs) fused into each shard's
//! run-to-completion [`Stage`].

use utps_core::client::{DriverState, KvWorld};
use utps_core::experiment::{RunConfig, RunResult};
use utps_core::msg::{NetMsg, OpKind, Response};
use utps_core::rpc::{send_response, RecvRing, RespBuffers};
use utps_core::stage::{Stage, StepOutcome};
use utps_core::store::{KvOp, KvStore, OpBuffers};
use utps_index::Step;
use utps_sim::nic::Fabric;
use utps_sim::time::SimTime;
use utps_sim::{Ctx, Machine, RecvFate, StatClass};
use utps_workload::Op;

/// eRPC worker buffer budget (the paper: "15-MB buffer per worker thread").
const ERPC_WORKER_BYTES: usize = 15 << 20;

/// eRPCKV server world.
pub struct ErpcWorld {
    /// Network fabric.
    pub fabric: Fabric<NetMsg>,
    /// Per-worker receive rings.
    pub rings: Vec<RecvRing>,
    /// Per-worker response buffers.
    pub resp: RespBuffers,
    /// The store (logically sharded by `key mod workers`).
    pub store: KvStore,
    /// Worker count.
    pub workers: usize,
    /// Requests the router could not place yet (target ring full).
    pub overflow: std::collections::VecDeque<utps_core::msg::Request>,
    /// Driver state.
    pub driver: DriverState,
}

impl KvWorld for ErpcWorld {
    fn fabric_mut(&mut self) -> &mut Fabric<NetMsg> {
        &mut self.fabric
    }

    fn driver_mut(&mut self) -> &mut DriverState {
        &mut self.driver
    }
}

impl ErpcWorld {
    /// NIC-side routing: steers arrivals to `key mod workers` rings.
    /// Free for the CPUs (clients address worker QPs directly).
    ///
    /// Receive-side fault fates (drop / duplicate / delay) apply to fresh
    /// fabric arrivals only — overflow retries already "arrived" once. A
    /// dropped request's payload is reclaimed; a duplicated one gets a deep
    /// copy so each delivery owns its bytes (the one sanctioned copy).
    fn route(&mut self, m: &mut Machine, now: SimTime, limit: usize) {
        let mut moved = 0;
        let mut polls = 0;
        while moved < limit && polls < limit * 4 {
            // Retry overflow first to preserve per-flow ordering.
            let req = match self.overflow.pop_front() {
                Some(r) => r,
                None => {
                    polls += 1;
                    match self.fabric.server_poll(now) {
                        Some(NetMsg::Req(r)) => {
                            if m.faults.net_active() {
                                match m.faults.recv_fate() {
                                    RecvFate::Drop => {
                                        m.registry.counter_inc("fault.rx_drop");
                                        if let Some(v) = r.value {
                                            m.payloads.free(v);
                                        }
                                        continue;
                                    }
                                    RecvFate::Delay { delay } => {
                                        m.registry.counter_inc("fault.rx_delay");
                                        self.fabric.redeliver_server(now + delay, NetMsg::Req(r));
                                        continue;
                                    }
                                    RecvFate::Duplicate { delay } => {
                                        m.registry.counter_inc("fault.rx_dup");
                                        let mut dup = r.clone();
                                        dup.value = dup.value.map(|v| m.payloads.dup(v));
                                        self.fabric.redeliver_server(now + delay, NetMsg::Req(dup));
                                        r
                                    }
                                    RecvFate::Deliver => r,
                                }
                            } else {
                                r
                            }
                        }
                        Some(NetMsg::Resp(_)) => unreachable!("server got a response"),
                        None => break,
                    }
                }
            };
            let target = (req.op.key() % self.workers as u64) as usize;
            match self.rings[target].try_dma(&mut m.cache, req) {
                Ok(_) => moved += 1,
                Err(req) => {
                    self.overflow.push_front(req);
                    break; // head-of-line at the router: backpressure
                }
            }
        }
    }
}

struct ActiveOp {
    seq: u64,
    op: KvOp,
}

/// A share-nothing shard stage: NIC dispatch fused with run-to-completion
/// execution over the worker's exclusive key shard.
pub struct ErpcWorker {
    id: usize,
    cursor: u64,
    batch: usize,
    ops: Vec<ActiveOp>,
}

impl ErpcWorker {
    /// Creates worker `id` with the given batch size.
    pub fn new(id: usize, batch: usize) -> Self {
        ErpcWorker {
            id,
            cursor: 0,
            batch: batch.max(1),
            ops: Vec::new(),
        }
    }

    fn build_op(&self, ctx: &mut Ctx<'_>, world: &mut ErpcWorld, seq: u64) -> ActiveOp {
        let bufs = OpBuffers {
            recv_addr: world.rings[self.id].slot_addr(seq),
            resp_addr: world.resp.addr_for(self.id, seq),
        };
        let op = match world.rings[self.id].request(seq).op.clone() {
            Op::Get { key } => KvOp::get(&world.store, key, bufs),
            // Move the payload handle out of the slot — no copy.
            Op::Put { key, .. } => match world.rings[self.id].take_value(seq) {
                Some(v) => {
                    let value = ctx.machine().payloads.take(v);
                    KvOp::put(&world.store, key, value, bufs)
                }
                None => {
                    ctx.machine().registry.counter_inc("server.malformed_req");
                    KvOp::failed(OpKind::Put, key, bufs)
                }
            },
            Op::Scan { key, count } => KvOp::scan(&world.store, key, count, Vec::new(), bufs),
            Op::Delete { key } => KvOp::delete(&world.store, key, bufs),
        };
        ActiveOp { seq, op }
    }

    fn run(&mut self, ctx: &mut Ctx<'_>, world: &mut ErpcWorld) {
        if self.ops.is_empty() {
            {
                let now = ctx.now();
                world.route(ctx.machine(), now, 8);
            }
            while self.ops.len() < self.batch && world.rings[self.id].is_posted(self.cursor) {
                let seq = self.cursor;
                self.cursor += 1;
                world.rings[self.id].claim(ctx, seq);
                // Monolithic loop: same front-end churn as BaseKV.
                ctx.stage_transitions(3);
                let op = self.build_op(ctx, world, seq);
                self.ops.push(op);
            }
            return;
        }

        let mut i = 0;
        while i < self.ops.len() {
            ctx.fsm_switch();
            match self.ops[i].op.poll(ctx, &mut world.store) {
                Step::Done(out) => {
                    let finished = self.ops.swap_remove(i);
                    let req = world.rings[self.id].request(finished.seq);
                    let is_get = matches!(req.op, Op::Get { .. });
                    let resp = Response {
                        client: req.client,
                        seq: req.seq,
                        ok: out.ok,
                        moved: false,
                        value: if is_get { out.value } else { None },
                        scan_count: out.scan_count,
                        payload_extra: if is_get { 0 } else { out.payload },
                        resp_addr: 0,
                        sent_at: req.sent_at,
                    };
                    let resp_addr = world.resp.addr_for(self.id, finished.seq);
                    world.rings[self.id].abort(finished.seq);
                    send_response(ctx, &mut world.fabric, resp_addr, resp);
                }
                Step::Ready => i += 1,
                Step::Blocked => {
                    // Run-to-completion: the worker stalls on the lock.
                    // (Share-nothing eRPCKV rarely hits this — only via
                    // rebalancing-free collisions.)
                    return;
                }
            }
        }
    }
}

impl Stage<ErpcWorld> for ErpcWorker {
    fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut ErpcWorld) -> StepOutcome {
        self.run(ctx, world);
        if ctx.progressed() {
            StepOutcome::Progress
        } else {
            StepOutcome::Idle
        }
    }

    fn name(&self) -> &'static str {
        "erpc-shard"
    }
}

/// Runs eRPCKV under `cfg`.
pub fn run_erpckv(cfg: &RunConfig) -> RunResult {
    let populate_len = cfg.workload.populate_value_len();
    let store = KvStore::populate(cfg.index, cfg.keys, populate_len);
    // 15 MB per worker at the configured slot size.
    let slots = (ERPC_WORKER_BYTES / cfg.slot_size).next_power_of_two() / 2;
    let rings = (0..cfg.workers)
        .map(|w| {
            let base = utps_sim::vaddr::RECV_RING + w * utps_sim::vaddr::RECV_RING_STRIDE;
            let mut r = RecvRing::new_at(slots.max(64), cfg.slot_size, base);
            r.parse_ns = 6; // eRPC's leaner per-message path
            r
        })
        .collect();
    let world = ErpcWorld {
        fabric: Fabric::new(cfg.machine.net.clone(), cfg.clients),
        rings,
        resp: RespBuffers::new(cfg.workers, 64, 1152),
        store,
        workers: cfg.workers,
        overflow: Default::default(),
        driver: DriverState::new(cfg.clients, SimTime(cfg.warmup)),
    };
    crate::run::run_pipeline(
        cfg,
        cfg.workers,
        world,
        |rt| {
            for id in 0..cfg.workers {
                rt.spawn_stage(Some(id), StatClass::Other, ErpcWorker::new(id, cfg.batch));
            }
            rt.spawn_clients(cfg);
        },
        |w| &w.driver,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use utps_core::experiment::WorkloadSpec;
    use utps_index::IndexKind;
    use utps_sim::config::MachineConfig;
    use utps_sim::time::MICROS;
    use utps_workload::Mix;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            keys: 20_000,
            workers: 4,
            clients: 8,
            pipeline: 4,
            warmup: 500 * MICROS,
            duration: 1_500 * MICROS,
            machine: MachineConfig::tiny(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn erpckv_end_to_end() {
        let r = run_erpckv(&quick_cfg());
        assert!(r.completed > 500, "only {} completed", r.completed);
        assert_eq!(r.not_found, 0);
    }

    #[test]
    fn uniform_load_spreads_over_shards() {
        let cfg = RunConfig {
            index: IndexKind::Hash,
            workload: WorkloadSpec::Ycsb {
                mix: Mix::C,
                theta: 0.0,
                value_len: 8,
                scan_len: 50,
            },
            ..quick_cfg()
        };
        let r = run_erpckv(&cfg);
        assert!(
            r.completed > 1_000,
            "uniform should be fast: {}",
            r.completed
        );
    }
}
