//! BaseKV: the run-to-completion baseline (§5.1).
//!
//! Identical substrate to μTPS — same reconfigurable RPC receive ring, same
//! store, same batching and prefetching — but each worker executes the whole
//! request monolithically: it polls its slots, traverses the index, copies
//! data, and responds, all on one thread (NP-TPQ in the paper's taxonomy).
//! Share-everything: any worker serves any key, so per-item locks and index
//! node lines bounce between cores under skew, and the worker's index/data
//! accesses evict its own network-buffer lines from the LLC — the two
//! effects μTPS's layer split removes.
//!
//! On the stage engine, BaseKV is the degenerate composition: one
//! run-to-completion [`Stage`] per worker, never handing off.

use std::collections::VecDeque;

use utps_core::client::{DriverState, KvWorld};
use utps_core::experiment::{RunConfig, RunResult};
use utps_core::msg::{NetMsg, OpKind, Response};
use utps_core::retry::DedupTable;
use utps_core::rpc::{send_response, RecvRing, RespBuffers};
use utps_core::stage::{PipelineRuntime, Stage, StepOutcome};
use utps_core::store::{KvOp, KvOpOutput, KvStore, OpBuffers};
use utps_core::tier::TierState;
use utps_index::Step;
use utps_sim::nic::Fabric;
use utps_sim::time::SimTime;
use utps_sim::{Ctx, StatClass};
use utps_wal::{WalOp, WalRecord};
use utps_workload::Op;

/// BaseKV server world.
pub struct BaseWorld {
    /// Network fabric.
    pub fabric: Fabric<NetMsg>,
    /// Shared receive ring (reconfigurable RPC, same as μTPS).
    pub ring: RecvRing,
    /// Per-worker response buffers.
    pub resp: RespBuffers,
    /// The store (share-everything).
    pub store: KvStore,
    /// Worker count.
    pub workers: usize,
    /// Driver state.
    pub driver: DriverState,
    /// Responses sent.
    pub responses: u64,
    /// Duplicate-PUT suppression table (active only under retry/faults).
    pub dedup: DedupTable,
    /// Cluster admission hooks; `None` outside cluster runs.
    pub cluster: Option<utps_core::shardctl::ShardCtl>,
    /// Durable tier (WAL + cold sorted run); `None` (DRAM-only) leaves
    /// BaseKV byte-identical to the tier-less build.
    pub tier: Option<TierState>,
}

impl KvWorld for BaseWorld {
    fn fabric_mut(&mut self) -> &mut Fabric<NetMsg> {
        &mut self.fabric
    }

    fn driver_mut(&mut self) -> &mut DriverState {
        &mut self.driver
    }
}

struct ActiveOp {
    seq: u64,
    op: KvOp,
    /// A get that missed DRAM but hit the cold run parks here until the
    /// simulated device read completes: (ready time, value snapshot).
    cold: Option<(SimTime, Vec<u8>)>,
}

/// A run-to-completion worker: the whole request pipeline as one stage.
pub struct BaseWorker {
    id: usize,
    cursor: u64,
    batch: usize,
    ops: Vec<ActiveOp>,
    /// WAL records for the batch in flight, sealed as one commit group
    /// when the batch retires (tier runs only).
    wal_buf: Vec<WalRecord>,
    /// Acks held behind the durability barrier: (needed WAL seq, response,
    /// response buffer address). Released once `durable_seq` catches up.
    defers: VecDeque<(u64, Response, usize)>,
}

impl BaseWorker {
    /// Creates worker `id` of `n` with the given batch size.
    pub fn new(id: usize, batch: usize) -> Self {
        BaseWorker {
            id,
            cursor: id as u64,
            batch: batch.max(1),
            ops: Vec::new(),
            wal_buf: Vec::new(),
            defers: VecDeque::new(),
        }
    }

    fn build_op(ctx: &mut Ctx<'_>, world: &mut BaseWorld, id: usize, seq: u64) -> ActiveOp {
        let bufs = OpBuffers {
            recv_addr: world.ring.slot_addr(seq),
            resp_addr: world.resp.addr_for(id, seq),
        };
        let op = match world.ring.request(seq).op.clone() {
            Op::Get { key } => KvOp::get(&world.store, key, bufs),
            // The payload is *moved* out of the receive slot's arena
            // handle, never copied; a PUT without one is a protocol error.
            Op::Put { key, .. } => match world.ring.take_value(seq) {
                Some(v) => {
                    let value = ctx.machine().payloads.take(v);
                    KvOp::put(&world.store, key, value, bufs)
                }
                None => {
                    ctx.machine().registry.counter_inc("server.malformed_req");
                    KvOp::failed(OpKind::Put, key, bufs)
                }
            },
            Op::Scan { key, count } => KvOp::scan(&world.store, key, count, Vec::new(), bufs),
            Op::Delete { key } => KvOp::delete(&world.store, key, bufs),
        };
        ActiveOp {
            seq,
            op,
            cold: None,
        }
    }

    fn run(&mut self, ctx: &mut Ctx<'_>, world: &mut BaseWorld) {
        // Release acks whose commit group has become durable. Every ack —
        // reads included, since they may have observed an earlier
        // un-durable write — waits here when the tier is on; the dedup
        // table records only at actual send so a retransmit that arrives
        // while its ack is parked re-executes idempotently.
        if !self.defers.is_empty() {
            let durable = {
                let tier = world.tier.as_mut().expect("defers imply a tier");
                tier.advance(ctx.now());
                tier.durable_seq()
            };
            while self
                .defers
                .front()
                .is_some_and(|(need, _, _)| *need <= durable)
            {
                let (_, resp, resp_addr) = self.defers.pop_front().expect("checked above");
                world.dedup.record(resp.client, resp.seq);
                world.responses += 1;
                send_response(ctx, &mut world.fabric, resp_addr, resp);
            }
        }
        // Fill the batch: pump the NIC and claim owned slots.
        if self.ops.is_empty() {
            {
                let now = ctx.now();
                let m = ctx.machine();
                world.ring.pump(m, &mut world.fabric, now, 8);
            }
            let n = world.workers as u64;
            while self.ops.len() < self.batch && world.ring.is_posted(self.cursor) {
                let seq = self.cursor;
                self.cursor += n;
                world.ring.claim(ctx, seq);
                // Monolithic loop: parse→index→copy→respond front-end churn.
                ctx.stage_transitions(3);
                let (rc, rs, sent_at, key, is_mutation, is_scan) = {
                    let req = world.ring.request(seq);
                    (
                        req.client,
                        req.seq,
                        req.sent_at,
                        req.op.key(),
                        matches!(req.op, Op::Put { .. } | Op::Delete { .. }),
                        matches!(req.op, Op::Scan { .. }),
                    )
                };
                // Cluster admission: bounce keys this shard no longer owns
                // (frozen or migrated) so the client re-routes them — same
                // semantics as the μTPS hook in `utps_core::server`.
                if let Some(cl) = &world.cluster {
                    if cl.admit(key, is_mutation) == utps_core::shardctl::Admit::Bounce {
                        ctx.machine().registry.counter_inc("cluster.moved_bounce");
                        if let Some(v) = world.ring.take_value(seq) {
                            ctx.machine().payloads.free(v);
                        }
                        let resp = utps_core::msg::Response {
                            client: rc,
                            seq: rs,
                            ok: false,
                            moved: true,
                            value: None,
                            scan_count: 0,
                            payload_extra: 0,
                            resp_addr: 0,
                            sent_at,
                        };
                        let resp_addr = world.resp.addr_for(self.id, seq);
                        world.ring.abort(seq);
                        send_response(ctx, &mut world.fabric, resp_addr, resp);
                        continue;
                    }
                }
                // Retransmitted mutation already applied? Ack without
                // re-executing (exactly-once under client retransmits).
                if is_mutation && world.dedup.enabled() && world.dedup.seen(rc, rs) {
                    ctx.machine().registry.counter_inc("server.dup_suppressed");
                    // The suppressed write's payload is never consumed.
                    if let Some(v) = world.ring.take_value(seq) {
                        ctx.machine().payloads.free(v);
                    }
                    let resp = utps_core::msg::Response {
                        client: rc,
                        seq: rs,
                        ok: true,
                        moved: false,
                        value: None,
                        scan_count: 0,
                        payload_extra: 0,
                        resp_addr: 0,
                        sent_at,
                    };
                    let resp_addr = world.resp.addr_for(self.id, seq);
                    world.ring.abort(seq);
                    world.responses += 1;
                    send_response(ctx, &mut world.fabric, resp_addr, resp);
                    continue;
                }
                if let Some(cl) = &world.cluster {
                    cl.op_begin(key, seq);
                }
                let op = Self::build_op(ctx, world, self.id, seq);
                self.ops.push(op);
                // Pin the key against eviction (or pause compaction for a
                // scan) while its FSM may hold item/node references.
                if let Some(tier) = world.tier.as_mut() {
                    if is_scan {
                        tier.scan_inc();
                    } else {
                        tier.active_inc(key);
                    }
                }
            }
            if self.ops.is_empty() && !self.defers.is_empty() {
                // Nothing runnable and acks parked on the barrier: jump to
                // the next group commit instead of spinning.
                if let Some(t) = world.tier.as_ref().and_then(|t| t.next_commit()) {
                    ctx.advance_to(t);
                }
            }
            return;
        }

        // Run the batch to completion, interleaving the op FSMs so
        // prefetches overlap (BaseKV keeps μTPS's batching+prefetching).
        // Run-to-completion semantics (§2.2.2): a held lock BLOCKS the
        // worker — it spins until the lock holder finishes, stalling every
        // other stage on this thread.
        let mut i = 0;
        let mut cold_next: Option<SimTime> = None;
        while i < self.ops.len() {
            // Ops parked on a cold-tier device read resolve here once the
            // read completes.
            if let Some((ready, _)) = self.ops[i].cold {
                if ctx.now() < ready {
                    cold_next = Some(cold_next.map_or(ready, |m: SimTime| m.min(ready)));
                    i += 1;
                    continue;
                }
                let finished = self.ops.swap_remove(i);
                let (_, v) = finished.cold.expect("checked above");
                let len = v.len();
                let payload = ctx.machine().payloads.alloc(v.into_boxed_slice());
                ctx.write(world.resp.addr_for(self.id, finished.seq), len);
                let out = KvOpOutput {
                    ok: true,
                    value: Some(payload),
                    scan_count: 0,
                    payload: 0,
                };
                self.respond(ctx, world, finished.seq, out);
                continue;
            }
            ctx.fsm_switch();
            match self.ops[i].op.poll(ctx, &mut world.store) {
                Step::Done(out) => {
                    let Some(out) = self.tier_finish(ctx, world, i, out) else {
                        // Parked on a cold-tier read; resolved on a later
                        // pass over the batch.
                        if let Some((ready, _)) = self.ops[i].cold {
                            cold_next = Some(cold_next.map_or(ready, |m: SimTime| m.min(ready)));
                        }
                        i += 1;
                        continue;
                    };
                    let finished = self.ops.swap_remove(i);
                    self.respond(ctx, world, finished.seq, out);
                }
                Step::Ready => i += 1,
                Step::Blocked => {
                    // Stall the whole worker on this lock (spin charged by
                    // the lock attempt); resume from this op next step.
                    return;
                }
            }
        }
        if self.ops.is_empty() {
            // Batch retired: seal its WAL records as one commit group. The
            // acks queued above stay parked until this group commits.
            if let Some(tier) = world.tier.as_mut() {
                if !self.wal_buf.is_empty() {
                    let records = std::mem::take(&mut self.wal_buf);
                    // Group encode: header plus record copies into the tail.
                    ctx.compute_ns(60 + 8 * records.len() as u64);
                    tier.seal_group(&records, ctx.now());
                }
            }
        } else if let Some(t) = cold_next {
            // Only cold-read waiters remain: jump to the earliest device
            // completion instead of spinning.
            ctx.advance_to(t);
        }
    }

    /// Completes one op: builds the response and either sends it (DRAM-only
    /// build) or parks it behind the durability barrier (tier build).
    fn respond(&mut self, ctx: &mut Ctx<'_>, world: &mut BaseWorld, seq: u64, out: KvOpOutput) {
        let req = world.ring.request(seq);
        let is_get = matches!(req.op, Op::Get { .. });
        let resp = utps_core::msg::Response {
            client: req.client,
            seq: req.seq,
            ok: out.ok,
            moved: false,
            value: if is_get { out.value } else { None },
            scan_count: out.scan_count,
            payload_extra: if is_get { 0 } else { out.payload },
            resp_addr: 0,
            sent_at: req.sent_at,
        };
        let resp_addr = world.resp.addr_for(self.id, seq);
        if let Some(tier) = &world.tier {
            if let Some(cl) = &world.cluster {
                cl.op_end(seq);
            }
            world.ring.abort(seq);
            self.defers
                .push_back((tier.last_applied(), resp, resp_addr));
        } else {
            world.dedup.record(resp.client, resp.seq);
            if let Some(cl) = &world.cluster {
                cl.op_end(seq);
            }
            world.ring.abort(seq);
            world.responses += 1;
            send_response(ctx, &mut world.fabric, resp_addr, resp);
        }
    }

    /// Tier bookkeeping when an op's FSM completes — the BaseKV twin of
    /// `utps_core::server`'s `tier_finish`: releases the active-key guard,
    /// appends WAL records for applied writes, serves get misses from the
    /// cold run (parking the op on the device read; returns `None`), and
    /// upgrades deletes of run-only keys. Passthrough without the tier.
    fn tier_finish(
        &mut self,
        ctx: &mut Ctx<'_>,
        world: &mut BaseWorld,
        i: usize,
        mut out: KvOpOutput,
    ) -> Option<KvOpOutput> {
        if world.tier.is_none() {
            return Some(out);
        }
        let seq = self.ops[i].seq;
        let (client, client_seq, key, is_put, is_delete, is_get, is_scan) = {
            let req = world.ring.request(seq);
            (
                req.client,
                req.seq,
                req.op.key(),
                matches!(req.op, Op::Put { .. }),
                matches!(req.op, Op::Delete { .. }),
                matches!(req.op, Op::Get { .. }),
                matches!(req.op, Op::Scan { .. }),
            )
        };
        // Snapshot the just-applied value before borrowing the tier.
        let put_value = if is_put && out.ok {
            world.store.get_native(key).map(<[u8]>::to_vec)
        } else {
            None
        };
        let tier = world.tier.as_mut().expect("checked above");
        if is_scan {
            tier.scan_dec();
            return Some(out);
        }
        tier.active_dec(key);
        if let Some(value) = put_value {
            ctx.compute_ns(10 + value.len() as u64 / 16);
            self.wal_buf.push(WalRecord {
                wal_seq: tier.next_seq(),
                client,
                client_seq,
                key,
                op: WalOp::Put,
                value,
            });
        } else if is_delete {
            let cold_only = !out.ok && tier.cold_get(key).is_some();
            if out.ok || cold_only {
                // Kill any run copy; log the delete. A run-only delete
                // succeeds by tombstone alone — the run is immutable.
                tier.tombstone(key);
                ctx.compute_ns(10);
                self.wal_buf.push(WalRecord {
                    wal_seq: tier.next_seq(),
                    client,
                    client_seq,
                    key,
                    op: WalOp::Delete,
                    value: Vec::new(),
                });
                out.ok = true;
            }
        } else if is_get && !out.ok {
            if let Some(v) = tier.cold_get(key) {
                // Cold hit: park on the device read with a value snapshot
                // (compaction may replace the run before the read lands).
                let ready = tier.device.read(v.len(), ctx.now());
                self.ops[i].cold = Some((ready, v));
                return None;
            }
        }
        Some(out)
    }
}

impl Stage<BaseWorld> for BaseWorker {
    fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut BaseWorld) -> StepOutcome {
        self.run(ctx, world);
        if ctx.progressed() {
            StepOutcome::Progress
        } else {
            StepOutcome::Idle
        }
    }

    fn name(&self) -> &'static str {
        "basekv-rtc"
    }
}

/// Background compactor driving the durable tier's eviction/merge pass —
/// the BaseKV twin of μTPS's `TierCompactorProc` (no hot cache to honor).
pub struct BaseCompactor {
    total_keys: u64,
    next_at: SimTime,
}

impl BaseCompactor {
    /// Compactor over a `[0, total_keys)` key space, first pass at
    /// `first_at`.
    pub fn new(total_keys: u64, first_at: SimTime) -> Self {
        BaseCompactor {
            total_keys,
            next_at: first_at,
        }
    }
}

impl Stage<BaseWorld> for BaseCompactor {
    fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut BaseWorld) -> StepOutcome {
        let Some(tier) = world.tier.as_mut() else {
            ctx.halt();
            return StepOutcome::Idle;
        };
        tier.advance(ctx.now());
        if ctx.now() >= self.next_at {
            utps_core::tier::compact_pass(tier, &mut world.store, None, self.total_keys, ctx);
            let period = world
                .tier
                .as_ref()
                .expect("tier checked above")
                .cfg
                .compact_every_ps;
            self.next_at = SimTime(ctx.now().as_ps() + period);
        }
        ctx.advance_to(self.next_at);
        StepOutcome::Idle
    }

    fn name(&self) -> &'static str {
        "base-compactor"
    }
}

/// Builds a fresh BaseKV world for `cfg` (populated store, tier from
/// config). The crash runner reuses this and swaps in recovered state.
pub fn build_base_world(cfg: &RunConfig) -> BaseWorld {
    let populate_len = cfg.workload.populate_value_len();
    let store = KvStore::populate(cfg.index, cfg.keys, populate_len);
    BaseWorld {
        fabric: Fabric::new(cfg.machine.net.clone(), cfg.clients),
        ring: RecvRing::new(cfg.ring_slots, cfg.slot_size),
        resp: RespBuffers::new(cfg.workers, 64, 1152),
        store,
        workers: cfg.workers,
        driver: DriverState::new(cfg.clients, SimTime(cfg.warmup)),
        responses: 0,
        dedup: DedupTable::new(cfg.clients, cfg.retry.enabled() || cfg.faults.net_active()),
        cluster: None,
        tier: cfg.tier.clone().map(|t| TierState::new(t, cfg.seed)),
    }
}

/// Spawns the BaseKV workers (and the tier compactor when configured).
pub fn spawn_base_procs(rt: &mut PipelineRuntime<BaseWorld>, cfg: &RunConfig, isolate_ddio: bool) {
    if isolate_ddio {
        let full = rt.machine().cache.full_mask();
        let ddio = rt.machine().cache.ddio_mask();
        for w in 0..cfg.workers {
            rt.machine().cache.set_clos_mask(w, full & !ddio);
        }
    }
    for id in 0..cfg.workers {
        rt.spawn_stage(Some(id), StatClass::Other, BaseWorker::new(id, cfg.batch));
    }
    if let Some(tc) = &cfg.tier {
        rt.spawn_stage(
            Some(cfg.workers),
            StatClass::Other,
            BaseCompactor::new(cfg.keys, SimTime(tc.compact_every_ps)),
        );
    }
}

/// Runs BaseKV under `cfg`. `isolate_ddio = true` reproduces the "TPQ+CAT"
/// variant of Figure 2a: worker CLOS masks exclude the DDIO ways.
pub fn run_basekv_opts(cfg: &RunConfig, isolate_ddio: bool) -> RunResult {
    run_basekv_with_world(cfg, isolate_ddio).0
}

/// Like [`run_basekv_opts`] but also returns the final world (the crash
/// runner harvests the tier and device state from it).
pub fn run_basekv_with_world(cfg: &RunConfig, isolate_ddio: bool) -> (RunResult, BaseWorld) {
    let world = build_base_world(cfg);
    // One core per worker, plus one for the compactor when the tier is on
    // (keeping the tier-less core count — and thus the schedule — intact).
    let cores = cfg.workers + usize::from(cfg.tier.is_some());
    let mut rt = PipelineRuntime::new(cfg, cores, world);
    spawn_base_procs(&mut rt, cfg, isolate_ddio);
    rt.spawn_clients(cfg);
    rt.run(|eng| {
        if let Some(t) = eng.world.tier.as_mut() {
            t.stats = Default::default();
            t.device.stats = Default::default();
        }
    });
    let mut eng = rt.into_engine();
    let tier_folds: Option<[(&'static str, u64); 11]> = eng.world.tier.as_ref().map(|t| {
        [
            ("wal.records", t.stats.wal_records),
            ("wal.groups", t.stats.wal_groups),
            ("wal.bytes", t.stats.wal_bytes),
            ("device.reads", t.device.stats.reads),
            ("device.writes", t.device.stats.writes),
            ("tier.cold_hit", t.stats.cold_hits),
            ("tier.cold_miss", t.stats.cold_misses),
            ("tier.compactions", t.stats.compactions),
            ("tier.evicted", t.stats.evicted),
            ("tier.run_items", t.run_items()),
            ("tier.tombstones", t.tombstone_count()),
        ]
    });
    if let Some(tf) = tier_folds {
        let reg = &mut eng.machine().registry;
        for (name, v) in tf {
            reg.counter_add(name, v);
        }
    }
    let mut r = crate::run::result_from_driver(cfg, &mut eng, |w: &BaseWorld| &w.driver);
    r.tier = eng
        .world
        .tier
        .as_ref()
        .map(utps_core::tier::TierRunStats::from_tier);
    (r, eng.world)
}

/// Runs BaseKV under `cfg`.
pub fn run_basekv(cfg: &RunConfig) -> RunResult {
    run_basekv_opts(cfg, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utps_core::experiment::WorkloadSpec;
    use utps_index::IndexKind;
    use utps_sim::config::MachineConfig;
    use utps_sim::time::MICROS;
    use utps_workload::Mix;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            keys: 20_000,
            workers: 4,
            clients: 8,
            pipeline: 4,
            warmup: 500 * MICROS,
            duration: 1_500 * MICROS,
            machine: MachineConfig::tiny(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn basekv_tree_end_to_end() {
        let r = run_basekv(&quick_cfg());
        assert!(r.completed > 500, "only {} completed", r.completed);
        assert_eq!(r.not_found, 0);
    }

    #[test]
    fn basekv_hash_with_scans_excluded() {
        let cfg = RunConfig {
            index: IndexKind::Hash,
            workload: WorkloadSpec::Ycsb {
                mix: Mix::A,
                theta: 0.0,
                value_len: 64,
                scan_len: 50,
            },
            ..quick_cfg()
        };
        let r = run_basekv(&cfg);
        assert!(r.completed > 500);
        assert_eq!(r.not_found, 0);
    }

    #[test]
    fn basekv_tier_serves_evicted_keys() {
        let cfg = RunConfig {
            record_history: true,
            tier: Some(utps_core::tier::TierConfig {
                dram_items_max: 15_000,
                evict_batch: 256,
                compact_every_ps: 100 * MICROS,
                ..Default::default()
            }),
            ..quick_cfg()
        };
        let (r, w) = run_basekv_with_world(&cfg, false);
        assert!(r.completed > 500, "only {} completed", r.completed);
        let t = r.tier.expect("tier stats attached");
        assert!(t.wal_records > 0, "writes must hit the WAL");
        assert!(t.evicted > 0, "compactor never evicted");
        assert!(t.durable_seq <= t.last_applied);
        // No deletes in the default mix and every key pre-populated: any
        // read of an evicted key must be served from the cold run.
        assert_eq!(r.not_found, 0, "cold tier must serve evicted keys");
        assert!(w.tier.expect("tier state").run_items() > 0);
        let (r2, _) = run_basekv_with_world(&cfg, false);
        assert_eq!(r.history_digest, r2.history_digest);
        assert_eq!(r.completed, r2.completed);
    }

    #[test]
    fn ddio_isolation_variant_runs() {
        let r = run_basekv_opts(&quick_cfg(), true);
        assert!(r.completed > 100);
    }
}
