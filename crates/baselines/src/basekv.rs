//! BaseKV: the run-to-completion baseline (§5.1).
//!
//! Identical substrate to μTPS — same reconfigurable RPC receive ring, same
//! store, same batching and prefetching — but each worker executes the whole
//! request monolithically: it polls its slots, traverses the index, copies
//! data, and responds, all on one thread (NP-TPQ in the paper's taxonomy).
//! Share-everything: any worker serves any key, so per-item locks and index
//! node lines bounce between cores under skew, and the worker's index/data
//! accesses evict its own network-buffer lines from the LLC — the two
//! effects μTPS's layer split removes.
//!
//! On the stage engine, BaseKV is the degenerate composition: one
//! run-to-completion [`Stage`] per worker, never handing off.

use utps_core::client::{DriverState, KvWorld};
use utps_core::experiment::{RunConfig, RunResult};
use utps_core::msg::{NetMsg, OpKind};
use utps_core::retry::DedupTable;
use utps_core::rpc::{send_response, RecvRing, RespBuffers};
use utps_core::stage::{Stage, StepOutcome};
use utps_core::store::{KvOp, KvStore, OpBuffers};
use utps_index::Step;
use utps_sim::nic::Fabric;
use utps_sim::time::SimTime;
use utps_sim::{Ctx, StatClass};
use utps_workload::Op;

/// BaseKV server world.
pub struct BaseWorld {
    /// Network fabric.
    pub fabric: Fabric<NetMsg>,
    /// Shared receive ring (reconfigurable RPC, same as μTPS).
    pub ring: RecvRing,
    /// Per-worker response buffers.
    pub resp: RespBuffers,
    /// The store (share-everything).
    pub store: KvStore,
    /// Worker count.
    pub workers: usize,
    /// Driver state.
    pub driver: DriverState,
    /// Responses sent.
    pub responses: u64,
    /// Duplicate-PUT suppression table (active only under retry/faults).
    pub dedup: DedupTable,
    /// Cluster admission hooks; `None` outside cluster runs.
    pub cluster: Option<utps_core::shardctl::ShardCtl>,
}

impl KvWorld for BaseWorld {
    fn fabric_mut(&mut self) -> &mut Fabric<NetMsg> {
        &mut self.fabric
    }

    fn driver_mut(&mut self) -> &mut DriverState {
        &mut self.driver
    }
}

struct ActiveOp {
    seq: u64,
    op: KvOp,
}

/// A run-to-completion worker: the whole request pipeline as one stage.
pub struct BaseWorker {
    id: usize,
    cursor: u64,
    batch: usize,
    ops: Vec<ActiveOp>,
}

impl BaseWorker {
    /// Creates worker `id` of `n` with the given batch size.
    pub fn new(id: usize, batch: usize) -> Self {
        BaseWorker {
            id,
            cursor: id as u64,
            batch: batch.max(1),
            ops: Vec::new(),
        }
    }

    fn build_op(ctx: &mut Ctx<'_>, world: &mut BaseWorld, id: usize, seq: u64) -> ActiveOp {
        let bufs = OpBuffers {
            recv_addr: world.ring.slot_addr(seq),
            resp_addr: world.resp.addr_for(id, seq),
        };
        let op = match world.ring.request(seq).op.clone() {
            Op::Get { key } => KvOp::get(&world.store, key, bufs),
            // The payload is *moved* out of the receive slot's arena
            // handle, never copied; a PUT without one is a protocol error.
            Op::Put { key, .. } => match world.ring.take_value(seq) {
                Some(v) => {
                    let value = ctx.machine().payloads.take(v);
                    KvOp::put(&world.store, key, value, bufs)
                }
                None => {
                    ctx.machine().registry.counter_inc("server.malformed_req");
                    KvOp::failed(OpKind::Put, key, bufs)
                }
            },
            Op::Scan { key, count } => KvOp::scan(&world.store, key, count, Vec::new(), bufs),
            Op::Delete { key } => KvOp::delete(&world.store, key, bufs),
        };
        ActiveOp { seq, op }
    }

    fn run(&mut self, ctx: &mut Ctx<'_>, world: &mut BaseWorld) {
        // Fill the batch: pump the NIC and claim owned slots.
        if self.ops.is_empty() {
            {
                let now = ctx.now();
                let m = ctx.machine();
                world.ring.pump(m, &mut world.fabric, now, 8);
            }
            let n = world.workers as u64;
            while self.ops.len() < self.batch && world.ring.is_posted(self.cursor) {
                let seq = self.cursor;
                self.cursor += n;
                world.ring.claim(ctx, seq);
                // Monolithic loop: parse→index→copy→respond front-end churn.
                ctx.stage_transitions(3);
                let (rc, rs, sent_at, key, is_mutation) = {
                    let req = world.ring.request(seq);
                    (
                        req.client,
                        req.seq,
                        req.sent_at,
                        req.op.key(),
                        matches!(req.op, Op::Put { .. } | Op::Delete { .. }),
                    )
                };
                // Cluster admission: bounce keys this shard no longer owns
                // (frozen or migrated) so the client re-routes them — same
                // semantics as the μTPS hook in `utps_core::server`.
                if let Some(cl) = &world.cluster {
                    if cl.admit(key, is_mutation) == utps_core::shardctl::Admit::Bounce {
                        ctx.machine().registry.counter_inc("cluster.moved_bounce");
                        if let Some(v) = world.ring.take_value(seq) {
                            ctx.machine().payloads.free(v);
                        }
                        let resp = utps_core::msg::Response {
                            client: rc,
                            seq: rs,
                            ok: false,
                            moved: true,
                            value: None,
                            scan_count: 0,
                            payload_extra: 0,
                            resp_addr: 0,
                            sent_at,
                        };
                        let resp_addr = world.resp.addr_for(self.id, seq);
                        world.ring.abort(seq);
                        send_response(ctx, &mut world.fabric, resp_addr, resp);
                        continue;
                    }
                }
                // Retransmitted mutation already applied? Ack without
                // re-executing (exactly-once under client retransmits).
                if is_mutation && world.dedup.enabled() && world.dedup.seen(rc, rs) {
                    ctx.machine().registry.counter_inc("server.dup_suppressed");
                    // The suppressed write's payload is never consumed.
                    if let Some(v) = world.ring.take_value(seq) {
                        ctx.machine().payloads.free(v);
                    }
                    let resp = utps_core::msg::Response {
                        client: rc,
                        seq: rs,
                        ok: true,
                        moved: false,
                        value: None,
                        scan_count: 0,
                        payload_extra: 0,
                        resp_addr: 0,
                        sent_at,
                    };
                    let resp_addr = world.resp.addr_for(self.id, seq);
                    world.ring.abort(seq);
                    world.responses += 1;
                    send_response(ctx, &mut world.fabric, resp_addr, resp);
                    continue;
                }
                if let Some(cl) = &world.cluster {
                    cl.op_begin(key, seq);
                }
                let op = Self::build_op(ctx, world, self.id, seq);
                self.ops.push(op);
            }
            return;
        }

        // Run the batch to completion, interleaving the op FSMs so
        // prefetches overlap (BaseKV keeps μTPS's batching+prefetching).
        // Run-to-completion semantics (§2.2.2): a held lock BLOCKS the
        // worker — it spins until the lock holder finishes, stalling every
        // other stage on this thread.
        let mut i = 0;
        while i < self.ops.len() {
            ctx.fsm_switch();
            match self.ops[i].op.poll(ctx, &mut world.store) {
                Step::Done(out) => {
                    let finished = self.ops.swap_remove(i);
                    let req = world.ring.request(finished.seq);
                    let is_get = matches!(req.op, Op::Get { .. });
                    let resp = utps_core::msg::Response {
                        client: req.client,
                        seq: req.seq,
                        ok: out.ok,
                        moved: false,
                        value: if is_get { out.value } else { None },
                        scan_count: out.scan_count,
                        payload_extra: if is_get { 0 } else { out.payload },
                        resp_addr: 0,
                        sent_at: req.sent_at,
                    };
                    let resp_addr = world.resp.addr_for(self.id, finished.seq);
                    world.dedup.record(resp.client, resp.seq);
                    if let Some(cl) = &world.cluster {
                        cl.op_end(finished.seq);
                    }
                    world.ring.abort(finished.seq);
                    world.responses += 1;
                    send_response(ctx, &mut world.fabric, resp_addr, resp);
                }
                Step::Ready => i += 1,
                Step::Blocked => {
                    // Stall the whole worker on this lock (spin charged by
                    // the lock attempt); resume from this op next step.
                    return;
                }
            }
        }
    }
}

impl Stage<BaseWorld> for BaseWorker {
    fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut BaseWorld) -> StepOutcome {
        self.run(ctx, world);
        if ctx.progressed() {
            StepOutcome::Progress
        } else {
            StepOutcome::Idle
        }
    }

    fn name(&self) -> &'static str {
        "basekv-rtc"
    }
}

/// Runs BaseKV under `cfg`. `isolate_ddio = true` reproduces the "TPQ+CAT"
/// variant of Figure 2a: worker CLOS masks exclude the DDIO ways.
pub fn run_basekv_opts(cfg: &RunConfig, isolate_ddio: bool) -> RunResult {
    let populate_len = cfg.workload.populate_value_len();
    let store = KvStore::populate(cfg.index, cfg.keys, populate_len);
    let world = BaseWorld {
        fabric: Fabric::new(cfg.machine.net.clone(), cfg.clients),
        ring: RecvRing::new(cfg.ring_slots, cfg.slot_size),
        resp: RespBuffers::new(cfg.workers, 64, 1152),
        store,
        workers: cfg.workers,
        driver: DriverState::new(cfg.clients, SimTime(cfg.warmup)),
        responses: 0,
        dedup: DedupTable::new(cfg.clients, cfg.retry.enabled() || cfg.faults.net_active()),
        cluster: None,
    };
    crate::run::run_pipeline(
        cfg,
        cfg.workers,
        world,
        |rt| {
            if isolate_ddio {
                let full = rt.machine().cache.full_mask();
                let ddio = rt.machine().cache.ddio_mask();
                for w in 0..cfg.workers {
                    rt.machine().cache.set_clos_mask(w, full & !ddio);
                }
            }
            for id in 0..cfg.workers {
                rt.spawn_stage(Some(id), StatClass::Other, BaseWorker::new(id, cfg.batch));
            }
            rt.spawn_clients(cfg);
        },
        |w| &w.driver,
    )
}

/// Runs BaseKV under `cfg`.
pub fn run_basekv(cfg: &RunConfig) -> RunResult {
    run_basekv_opts(cfg, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utps_core::experiment::WorkloadSpec;
    use utps_index::IndexKind;
    use utps_sim::config::MachineConfig;
    use utps_sim::time::MICROS;
    use utps_workload::Mix;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            keys: 20_000,
            workers: 4,
            clients: 8,
            pipeline: 4,
            warmup: 500 * MICROS,
            duration: 1_500 * MICROS,
            machine: MachineConfig::tiny(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn basekv_tree_end_to_end() {
        let r = run_basekv(&quick_cfg());
        assert!(r.completed > 500, "only {} completed", r.completed);
        assert_eq!(r.not_found, 0);
    }

    #[test]
    fn basekv_hash_with_scans_excluded() {
        let cfg = RunConfig {
            index: IndexKind::Hash,
            workload: WorkloadSpec::Ycsb {
                mix: Mix::A,
                theta: 0.0,
                value_len: 64,
                scan_len: 50,
            },
            ..quick_cfg()
        };
        let r = run_basekv(&cfg);
        assert!(r.completed > 500);
        assert_eq!(r.not_found, 0);
    }

    #[test]
    fn ddio_isolation_variant_runs() {
        let r = run_basekv_opts(&quick_cfg(), true);
        assert!(r.completed > 100);
    }
}
