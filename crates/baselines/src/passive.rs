//! Passive (one-sided RDMA) KVS baselines: RaceHash and Sherman (§5.1).
//!
//! Clients access server memory directly with one-sided verbs; server CPUs
//! are never involved. The server-side RNIC executes each verb as a DMA
//! against the *real* store memory (charged through the DDIO-aware cache
//! model) and returns a completion. Costs per operation follow the papers:
//!
//! * **RaceHash** (RACE hashing): get = READ the two candidate buckets
//!   (combined in one doorbell) + READ the item = 2 round trips;
//!   put = READ buckets + WRITE the item + CAS the slot pointer = 3 round
//!   trips.
//! * **Sherman**: clients cache internal B+-tree nodes, so a get is one
//!   READ of the leaf (plus the item payload); a rare cache miss re-reads
//!   the internal path. A put takes CAS (lock) + WRITE (leaf/payload) +
//!   WRITE (unlock) = 3 round trips. With 1 KB items the payload dominates
//!   and throughput becomes network-bandwidth-bound, which is exactly the
//!   regime where Sherman shines in Figure 7.
//!
//! This module models the *client protocol and network/DMA costs*, not the
//! remote data-structure modification algorithms themselves (the paper's
//! evaluation uses them as throughput baselines only); see DESIGN.md.

use utps_core::client::{ClientStats, DriverState};
use utps_core::experiment::{RunConfig, RunResult, SystemKind};
use utps_core::store::KvStore;
use utps_index::Index;
use utps_sim::nic::Fabric;
use utps_sim::time::{SimTime, NANOS};
use utps_sim::{Ctx, Process, StatClass, StepOutcome};
use utps_workload::{Op, Workload};

/// A one-sided verb on the wire.
#[derive(Clone, Debug)]
pub enum Verb {
    /// RDMA READ of `len` bytes at the addresses resolved for `key`.
    Read {
        /// Target key (the engine resolves real addresses).
        key: u64,
        /// Which structure lines to touch.
        what: ReadTarget,
    },
    /// RDMA WRITE of `len` bytes into the item for `key`.
    Write {
        /// Target key.
        key: u64,
        /// Payload length.
        len: usize,
    },
    /// RDMA compare-and-swap on a control word of `key`'s slot.
    Cas {
        /// Target key.
        key: u64,
    },
}

/// What a READ verb fetches.
#[derive(Clone, Copy, Debug)]
pub enum ReadTarget {
    /// The two candidate cuckoo buckets (RaceHash).
    HashBuckets,
    /// The item payload.
    Item,
    /// The B+-tree leaf node + item (Sherman fast path).
    Leaf,
    /// The full internal path (Sherman client-cache miss).
    InternalPath,
}

/// Fabric messages for the passive systems.
#[derive(Clone, Debug)]
pub enum PassiveMsg {
    /// Client → server verb.
    Verb {
        /// Issuing client.
        client: u32,
        /// The verb.
        verb: Verb,
    },
    /// Server RNIC → client completion carrying `payload` response bytes.
    Done {
        /// Payload bytes on the wire.
        payload: usize,
    },
}

/// Passive server world: just memory + NIC; no server processes touch it.
pub struct PassiveWorld {
    /// Fabric carrying verbs and completions.
    pub fabric: Fabric<PassiveMsg>,
    /// Server memory (index + items).
    pub store: KvStore,
    /// Driver state.
    pub driver: DriverState,
}

/// The server RNIC's DMA engine: executes verbs in arrival order.
pub struct VerbEngine;

impl Process<PassiveWorld> for VerbEngine {
    fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut PassiveWorld) -> StepOutcome {
        let now = ctx.now();
        let mut worked = false;
        for _ in 0..16 {
            let Some(msg) = world.fabric.server_poll(now) else {
                break;
            };
            worked = true;
            let PassiveMsg::Verb { client, verb } = msg else {
                unreachable!("server got a completion");
            };
            // ~250 ns of RNIC processing + PCIe DMA per verb.
            ctx.compute_ns(250);
            let cache = &mut ctx.machine().cache;
            let payload = match verb {
                Verb::Read { key, what } => match what {
                    ReadTarget::HashBuckets => {
                        let Index::Hash(map) = &world.store.index else {
                            panic!("HashBuckets read on a tree store")
                        };
                        for addr in map.probe_bucket_addrs(key) {
                            cache.nic_read(addr, 64);
                        }
                        128
                    }
                    ReadTarget::Item => match world.store.index.get_native(key) {
                        Some(id) => {
                            let len = world.store.items.value_len(id);
                            cache.nic_read(world.store.items.value_addr(id), len);
                            len
                        }
                        None => 8,
                    },
                    ReadTarget::Leaf => {
                        let Index::Tree(tree) = &world.store.index else {
                            panic!("Leaf read on a hash store")
                        };
                        let path = tree.path_addrs(key);
                        let leaf = *path.last().expect("empty path");
                        cache.nic_read(leaf, 256);
                        let item_len = match world.store.index.get_native(key) {
                            Some(id) => {
                                let len = world.store.items.value_len(id);
                                cache.nic_read(world.store.items.value_addr(id), len);
                                len
                            }
                            None => 0,
                        };
                        256 + item_len
                    }
                    ReadTarget::InternalPath => {
                        let Index::Tree(tree) = &world.store.index else {
                            panic!("InternalPath read on a hash store")
                        };
                        let path = tree.path_addrs(key);
                        for addr in &path {
                            cache.nic_read(*addr, 256);
                        }
                        path.len() * 256
                    }
                },
                Verb::Write { key, len } => {
                    if let Some(id) = world.store.index.get_native(key) {
                        let addr = world.store.items.value_addr(id);
                        cache.nic_write(addr, len.min(world.store.items.value_len(id)).max(1));
                    }
                    8
                }
                Verb::Cas { key } => {
                    if let Some(id) = world.store.index.get_native(key) {
                        cache.nic_write(world.store.items.value_addr(id), 8);
                    }
                    8
                }
            };
            let now = ctx.now();
            world
                .fabric
                .server_send(now, payload, client as usize, PassiveMsg::Done { payload });
        }
        if !worked {
            // Sleep until the next verb arrives.
            if let Some(at) = next_arrival(&world.fabric) {
                ctx.advance_to(at);
            }
            return StepOutcome::Idle;
        }
        StepOutcome::Progress
    }

    fn name(&self) -> &'static str {
        "verb-engine"
    }
}

fn next_arrival(fabric: &Fabric<PassiveMsg>) -> Option<SimTime> {
    // `Fabric` exposes no peek for the server queue beyond has_ready; poll
    // conservatively with a small quantum by returning None (the engine's
    // poll quantum applies).
    let _ = fabric;
    None
}

/// Which passive protocol a client speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassiveProtocol {
    /// RACE hashing.
    RaceHash,
    /// Sherman B+-tree with client-side internal-node cache.
    Sherman,
}

/// Per-operation verb scripts.
fn script(proto: PassiveProtocol, op: &Op, miss_roll: f64) -> Vec<Verb> {
    let key = op.key();
    match (proto, op) {
        (PassiveProtocol::RaceHash, Op::Get { .. }) => vec![
            Verb::Read {
                key,
                what: ReadTarget::HashBuckets,
            },
            Verb::Read {
                key,
                what: ReadTarget::Item,
            },
        ],
        (PassiveProtocol::RaceHash, Op::Put { value_len, .. }) => vec![
            Verb::Read {
                key,
                what: ReadTarget::HashBuckets,
            },
            Verb::Write {
                key,
                len: *value_len,
            },
            Verb::Cas { key },
        ],
        (PassiveProtocol::Sherman, Op::Get { .. }) => {
            let mut v = Vec::new();
            if miss_roll < 0.02 {
                v.push(Verb::Read {
                    key,
                    what: ReadTarget::InternalPath,
                });
            }
            v.push(Verb::Read {
                key,
                what: ReadTarget::Leaf,
            });
            v
        }
        (PassiveProtocol::Sherman, Op::Put { value_len, .. }) => vec![
            Verb::Cas { key },
            Verb::Write {
                key,
                len: *value_len,
            },
            Verb::Cas { key }, // unlock write
        ],
        (PassiveProtocol::Sherman, Op::Scan { count, .. }) => {
            // Leaf-chain reads: ≈ count/12 leaves.
            let leaves = (count / 12 + 1).max(1);
            (0..leaves)
                .map(|_| Verb::Read {
                    key,
                    what: ReadTarget::Leaf,
                })
                .collect()
        }
        (PassiveProtocol::RaceHash, Op::Scan { .. }) => {
            panic!("RaceHash does not support scans")
        }
        (PassiveProtocol::RaceHash, Op::Delete { .. }) => vec![
            Verb::Read {
                key,
                what: ReadTarget::HashBuckets,
            },
            Verb::Cas { key }, // clear the slot pointer
        ],
        (PassiveProtocol::Sherman, Op::Delete { .. }) => vec![
            Verb::Cas { key },
            Verb::Write { key, len: 8 },
            Verb::Cas { key },
        ],
    }
}

/// A passive client: one operation at a time, verbs strictly sequential
/// (each depends on the previous — the paper's "multiple one-sided verbs to
/// locate a KV item").
pub struct PassiveClient {
    id: u32,
    proto: PassiveProtocol,
    workload: Box<dyn Workload + Send>,
    rng_state: u64,
    current: Vec<Verb>,
    next_verb: usize,
    op_start: SimTime,
    awaiting: bool,
}

impl PassiveClient {
    /// Creates a client.
    pub fn new(id: u32, proto: PassiveProtocol, workload: Box<dyn Workload + Send>) -> Self {
        PassiveClient {
            id,
            proto,
            workload,
            rng_state: 0x9e3779b97f4a7c15u64.wrapping_mul(id as u64 + 1),
            current: Vec::new(),
            next_verb: 0,
            op_start: SimTime::ZERO,
            awaiting: false,
        }
    }

    fn roll(&mut self) -> f64 {
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng_state >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Process<PassiveWorld> for PassiveClient {
    fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut PassiveWorld) -> StepOutcome {
        let now = ctx.now();
        if self.awaiting {
            match world.fabric.client_poll(self.id as usize, now) {
                Some(PassiveMsg::Done { .. }) => {
                    self.awaiting = false;
                    ctx.compute_ns(20);
                }
                Some(PassiveMsg::Verb { .. }) => unreachable!("client got a verb"),
                None => {
                    if let Some(at) = world.fabric.client_next_at(self.id as usize) {
                        ctx.advance_to(at);
                    }
                    return StepOutcome::Idle;
                }
            }
        }
        if self.next_verb >= self.current.len() {
            // Operation complete (or first ever): record and start the next.
            if !self.current.is_empty() {
                let stats: &mut ClientStats = &mut world.driver.clients[self.id as usize];
                stats.completed_total += 1;
                if now >= world.driver.measure_start {
                    stats.completed += 1;
                    stats.hist.record((now - self.op_start) / NANOS);
                }
            }
            let op = self.workload.next_op();
            let roll = self.roll();
            self.current = script(self.proto, &op, roll);
            self.next_verb = 0;
            self.op_start = now;
        }
        // Issue the next verb.
        let verb = self.current[self.next_verb].clone();
        self.next_verb += 1;
        let wire = match &verb {
            Verb::Write { len, .. } => 32 + *len,
            _ => 32,
        };
        ctx.compute_ns(40); // WQE + doorbell
        let now = ctx.now();
        world.fabric.client_send(
            now,
            wire,
            PassiveMsg::Verb {
                client: self.id,
                verb,
            },
        );
        self.awaiting = true;
        StepOutcome::Progress
    }

    fn name(&self) -> &'static str {
        "passive-client"
    }
}

/// Runs a passive system under `cfg`.
pub fn run_passive(cfg: &RunConfig, proto: PassiveProtocol) -> RunResult {
    let populate_len = cfg.workload.populate_value_len();
    let store = KvStore::populate(cfg.index, cfg.keys, populate_len);
    // Model client threads: clients × pipeline independent sequential
    // clients (passive clients cannot pipeline verbs of one op).
    let nclients = cfg.clients * cfg.pipeline;
    let world = PassiveWorld {
        fabric: Fabric::new(cfg.machine.net.clone(), nclients),
        store,
        driver: DriverState::new(nclients, SimTime(cfg.warmup)),
    };
    // One-sided verbs bypass the receive ring, so network fault fates do not
    // apply here; the runtime's plan still drives per-core stall windows and
    // keeps the stats schema uniform across systems. `PassiveWorld` is not a
    // `KvWorld` (no request/response fabric), so the verb clients are
    // spawned as plain processes rather than via `spawn_clients`.
    crate::run::run_pipeline(
        cfg,
        1,
        world,
        |rt| {
            rt.spawn_process(None, StatClass::Other, Box::new(VerbEngine));
            for c in 0..nclients {
                let wl = cfg.workload.build(cfg.keys, cfg.seed, c as u64);
                rt.spawn_process(
                    None,
                    StatClass::Other,
                    Box::new(PassiveClient::new(c as u32, proto, wl)),
                );
            }
        },
        |w| &w.driver,
    )
}

/// Runs RaceHash (requires a hash-index config).
pub fn run_racehash(cfg: &RunConfig) -> RunResult {
    assert_eq!(
        cfg.index,
        utps_index::IndexKind::Hash,
        "{} needs a hash index",
        SystemKind::RaceHash.name()
    );
    run_passive(cfg, PassiveProtocol::RaceHash)
}

/// Runs Sherman (requires a tree-index config).
pub fn run_sherman(cfg: &RunConfig) -> RunResult {
    assert_eq!(
        cfg.index,
        utps_index::IndexKind::Tree,
        "{} needs a tree index",
        SystemKind::Sherman.name()
    );
    run_passive(cfg, PassiveProtocol::Sherman)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utps_core::experiment::WorkloadSpec;
    use utps_index::IndexKind;
    use utps_sim::config::MachineConfig;
    use utps_sim::time::MICROS;
    use utps_workload::Mix;

    fn quick_cfg(index: IndexKind) -> RunConfig {
        RunConfig {
            index,
            keys: 20_000,
            workers: 4,
            clients: 8,
            pipeline: 2,
            warmup: 500 * MICROS,
            duration: 1_500 * MICROS,
            machine: MachineConfig::tiny(),
            workload: WorkloadSpec::Ycsb {
                mix: Mix::A,
                theta: 0.99,
                value_len: 64,
                scan_len: 50,
            },
            ..RunConfig::default()
        }
    }

    #[test]
    fn racehash_end_to_end() {
        let r = run_racehash(&quick_cfg(IndexKind::Hash));
        assert!(r.completed > 100, "only {} completed", r.completed);
        // Multi-RTT ops: median latency must exceed 2 round trips.
        assert!(r.p50_ns > 3_000, "p50 {} too low for 2+ RTT", r.p50_ns);
    }

    #[test]
    fn sherman_end_to_end() {
        let r = run_sherman(&quick_cfg(IndexKind::Tree));
        assert!(r.completed > 100, "only {} completed", r.completed);
    }

    #[test]
    #[should_panic(expected = "needs a hash index")]
    fn racehash_rejects_tree() {
        let _ = run_racehash(&quick_cfg(IndexKind::Tree));
    }
}
