//! BaseKV crash + recovery: the run-to-completion twin of
//! `utps_core::crash::run_utps_crash`, sharing its harvest/recover/check
//! helpers so both systems face the identical protocol — run to a seeded
//! power loss, truncate the device at its durable marks, replay the
//! surviving WAL over the newest decodable run, resume with a continued
//! client fleet, and hand the stitched history to the oracle.

use utps_core::crash::{check_combined, client_next_seqs, durable_acks_preserved, CrashReport};
use utps_core::experiment::RunConfig;
use utps_core::stage::PipelineRuntime;
use utps_core::store::KvStore;
use utps_core::tier::TierState;
use utps_core::ClientProc;
use utps_sim::time::SimTime;
use utps_sim::StatClass;

use crate::basekv::{build_base_world, spawn_base_procs};

/// Runs BaseKV with the durable tier to a crash at `crash_at_ps`, recovers
/// from the surviving media image, resumes with a continued client fleet,
/// and verifies the combined history. Panics if `cfg.tier` is `None`.
pub fn run_basekv_crash(cfg: &RunConfig, crash_at_ps: u64) -> CrashReport {
    let mut cfg = cfg.clone();
    cfg.record_history = true;
    assert!(cfg.tier.is_some(), "crash runner requires the durable tier");
    assert!(
        crash_at_ps < cfg.warmup + cfg.duration,
        "crash point must land inside the run"
    );
    let cores = cfg.workers + 1;

    // Phase 1: run to the crash instant.
    let world = build_base_world(&cfg);
    let mut rt = PipelineRuntime::new(&cfg, cores, world);
    spawn_base_procs(&mut rt, &cfg, false);
    rt.spawn_clients(&cfg);
    rt.engine().run_until(SimTime(crash_at_ps));
    let world = rt.into_engine().world;

    let history1 = world.driver.history.clone().expect("history enabled");
    let pre_completed = world.driver.completed_total();
    let pre_issued: u64 = world.driver.clients.iter().map(|c| c.issued).sum();
    let pre_failed: u64 = world.driver.clients.iter().map(|c| c.failed).sum();
    let pending_at_crash = history1.records().iter().filter(|r| r.pending()).count();
    let next_seqs = client_next_seqs(&history1, cfg.clients);

    // Phase 2: the media image a restarting process finds, replayed.
    let mut tier = world.tier.expect("tier checked above");
    let image = tier.crash_image(SimTime(crash_at_ps));
    let populate_len = cfg.workload.populate_value_len();
    let initial = (0..cfg.keys).map(|k| (k, vec![0xabu8; populate_len]));
    let mut rec = utps_wal::recover(initial, image.run.as_ref(), &image.wal);
    let (acked_mutations, acked_preserved) = durable_acks_preserved(&history1, &rec.acked);

    // Phase 3: rebuild the world around the recovered image and resume.
    let mut world2 = build_base_world(&cfg);
    world2.store = KvStore::from_items(cfg.index, std::mem::take(&mut rec.items));
    world2.tier = Some(TierState::remount(
        cfg.tier.clone().expect("checked above"),
        cfg.seed,
        image.wal[..rec.wal_valid_len].to_vec(),
        image.run.clone(),
        rec.next_wal_seq,
        rec.groups + 1,
        rec.tombstones.iter().copied(),
    ));
    for &(c, s) in &rec.acked {
        world2.dedup.record(c, s);
    }
    let mut rt2 = PipelineRuntime::new(&cfg, cores, world2);
    spawn_base_procs(&mut rt2, &cfg, false);
    rt2.engine().world.driver.enable_history();
    for (c, &start_seq) in next_seqs.iter().enumerate() {
        let wl = cfg
            .workload
            .build(cfg.keys, cfg.seed, (cfg.clients + c) as u64);
        rt2.engine().spawn(
            None,
            StatClass::Other,
            Box::new(ClientProc::with_start_seq(
                c as u32,
                wl,
                cfg.pipeline,
                cfg.retry.clone(),
                start_seq,
            )),
        );
    }
    rt2.run(|_| {});
    let eng2 = rt2.into_engine();
    let history2 = eng2.world.driver.history.clone().expect("history enabled");
    let post_completed = eng2.world.driver.completed_total();
    let post_issued: u64 = eng2.world.driver.clients.iter().map(|c| c.issued).sum();
    let post_failed: u64 = eng2.world.driver.clients.iter().map(|c| c.failed).sum();

    let (combined_digest, oracle) =
        check_combined(&history1, &history2, crash_at_ps, cfg.keys, populate_len);
    CrashReport {
        pre_completed,
        pre_issued,
        pre_failed,
        post_completed,
        post_issued,
        post_failed,
        pending_at_crash,
        acked_mutations,
        acked_preserved,
        wal_truncated: rec.truncated,
        torn_segments: image.torn_segments,
        replayed: rec.replayed,
        groups: rec.groups,
        run_recovered: image.run.is_some(),
        combined_digest,
        oracle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utps_core::retry::RetryConfig;
    use utps_core::tier::TierConfig;
    use utps_sim::config::MachineConfig;
    use utps_sim::time::MICROS;

    #[test]
    fn basekv_crash_recover_resume_round_trips() {
        let cfg = RunConfig {
            keys: 20_000,
            workers: 4,
            clients: 8,
            pipeline: 4,
            warmup: 500 * MICROS,
            duration: 1_500 * MICROS,
            machine: MachineConfig::tiny(),
            oracle: true,
            retry: RetryConfig::chaos_default(),
            tier: Some(TierConfig {
                dram_items_max: 15_000,
                evict_batch: 256,
                compact_every_ps: 100 * MICROS,
                ..Default::default()
            }),
            ..RunConfig::default()
        };
        let crash_at = cfg.warmup + cfg.duration / 2;
        let rep = run_basekv_crash(&cfg, crash_at);
        assert!(rep.pre_completed > 200, "pre: {}", rep.pre_completed);
        assert!(rep.post_completed > 200, "post: {}", rep.post_completed);
        assert!(rep.acked_preserved, "durable-ack invariant violated");
        assert!(
            rep.oracle.ok(),
            "oracle violations: {:?}",
            rep.oracle.violations
        );
        let rep2 = run_basekv_crash(&cfg, crash_at);
        assert_eq!(rep.combined_digest, rep2.combined_digest);
    }
}
