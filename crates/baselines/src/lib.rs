//! Baseline KVSs for the μTPS evaluation (§5.1 "Compared systems").
//!
//! * [`basekv`] — **BaseKV**: identical to μTPS except for its
//!   run-to-completion thread architecture. It keeps the reconfigurable RPC,
//!   batching and prefetching; every worker simply executes the whole
//!   request (poll → index → data copy → respond) itself, share-everything.
//! * [`erpckv`] — **eRPCKV**: replaces the RPC module with an eRPC-style
//!   per-worker receive queue (large per-worker buffers, leaner per-message
//!   software path) and a share-nothing architecture that routes requests to
//!   workers by `key mod n`.
//! * [`passive`] — the passive one-sided-RDMA KVSs: **RaceHash** (hash
//!   index; multiple one-sided verbs per operation) and **Sherman**
//!   (B+-tree; client-side caching of internal nodes). Server CPUs are
//!   bypassed entirely — operations cost client-side round trips and NIC
//!   DMA against server memory.
//! * [`run()`](run::run) — a single dispatcher running any [`SystemKind`] under the
//!   shared [`RunConfig`].
//!
//! [`SystemKind`]: utps_core::experiment::SystemKind
//! [`RunConfig`]: utps_core::experiment::RunConfig

pub mod basekv;
pub mod crash;
pub mod erpckv;
pub mod passive;
pub mod run;

pub use basekv::run_basekv;
pub use crash::run_basekv_crash;
pub use erpckv::run_erpckv;
pub use passive::{run_racehash, run_sherman};
pub use run::run;
