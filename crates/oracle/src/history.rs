//! Client-observed operation histories.
//!
//! One [`OpRecord`] per *distinct* operation (retransmits extend the same
//! record's window; duplicate responses are ignored by the recorder). An
//! operation whose response never arrives stays pending — the checker treats
//! it as "may or may not have taken effect", which is exactly the semantics
//! of a timed-out request whose delayed copy might still execute server-side.

use std::collections::HashMap;

/// Operation class, mirroring the wire-level op kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Point read.
    Get,
    /// Write (update or insert).
    Put,
    /// Range scan (`scan_limit` keys from `key` upward).
    Scan,
    /// Delete.
    Delete,
}

impl OpClass {
    fn code(self) -> u8 {
        match self {
            OpClass::Get => 0,
            OpClass::Put => 1,
            OpClass::Scan => 2,
            OpClass::Delete => 3,
        }
    }
}

/// One operation as a client observed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// Issuing client.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u64,
    /// Operation class.
    pub class: OpClass,
    /// Target key (start key for scans).
    pub key: u64,
    /// First-send time, picoseconds.
    pub invoke_ps: u64,
    /// Accepted-response time, picoseconds; `None` while pending (in flight
    /// at run end, or abandoned after the retry budget).
    pub response_ps: Option<u64>,
    /// Response `ok` flag (meaningful only when a response arrived).
    pub ok: bool,
    /// Value digest: for puts the digest of the bytes *written* (known at
    /// invoke); for gets the digest of the bytes *returned* (known at
    /// response, `None` for misses).
    pub digest: Option<u64>,
    /// Requested scan length (scans only).
    pub scan_limit: u32,
    /// Returned item count (scans only).
    pub scan_count: u32,
}

impl OpRecord {
    /// Whether no response was ever accepted for this operation.
    pub fn pending(&self) -> bool {
        self.response_ps.is_none()
    }
}

/// A per-run operation history, in client invoke order.
#[derive(Clone, Debug, Default)]
pub struct History {
    records: Vec<OpRecord>,
    /// Open (client, seq) → record index, for response matching.
    open: HashMap<(u32, u64), usize>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// All records, in invoke (append) order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records an operation's first send. Retransmits must not call this
    /// again: the operation's window runs from the first send to the
    /// accepted response.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke(
        &mut self,
        client: u32,
        seq: u64,
        class: OpClass,
        key: u64,
        digest: Option<u64>,
        scan_limit: u32,
        now_ps: u64,
    ) {
        let idx = self.records.len();
        self.records.push(OpRecord {
            client,
            seq,
            class,
            key,
            invoke_ps: now_ps,
            response_ps: None,
            ok: false,
            digest,
            scan_limit,
            scan_count: 0,
        });
        let prev = self.open.insert((client, seq), idx);
        debug_assert!(prev.is_none(), "op ({client},{seq}) invoked twice");
    }

    /// Records the accepted response for `(client, seq)`. Duplicate
    /// responses (already completed, or never invoked) are ignored. For
    /// gets, `digest` carries the returned bytes' digest; puts keep the
    /// digest recorded at invoke.
    pub fn response(
        &mut self,
        client: u32,
        seq: u64,
        now_ps: u64,
        ok: bool,
        digest: Option<u64>,
        scan_count: u32,
    ) {
        let Some(idx) = self.open.remove(&(client, seq)) else {
            return;
        };
        let r = &mut self.records[idx];
        r.response_ps = Some(now_ps);
        r.ok = ok;
        if digest.is_some() {
            r.digest = digest;
        }
        r.scan_count = scan_count;
    }

    /// Marks `(client, seq)` abandoned (retry budget exhausted). The record
    /// stays pending: a delayed copy of the request may still execute.
    pub fn fail(&mut self, client: u32, seq: u64) {
        self.open.remove(&(client, seq));
    }

    /// Appends every record of `other` with its timestamps shifted forward
    /// by `shift_ps` — stitching a post-recovery run onto its pre-crash
    /// prefix as one observable history. Pending records stay pending (their
    /// windows extend past the crash: a timed-out op may have executed and
    /// survived recovery), and are not reopened for response matching.
    pub fn append_shifted(&mut self, other: &History, shift_ps: u64) {
        for r in other.records() {
            let mut r = r.clone();
            r.invoke_ps += shift_ps;
            r.response_ps = r.response_ps.map(|t| t + shift_ps);
            self.records.push(r);
        }
    }

    /// Deterministic digest over the full history, in append order. Two runs
    /// with identical interleavings produce identical digests, so goldens on
    /// this value catch interleaving-visible regressions that aggregate
    /// stats miss.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for r in &self.records {
            for word in [
                r.client as u64,
                r.seq,
                r.class.code() as u64,
                r.key,
                r.invoke_ps,
                r.response_ps.unwrap_or(u64::MAX),
                r.ok as u64,
                r.digest.unwrap_or(0),
                r.digest.is_some() as u64,
                r.scan_limit as u64,
                r.scan_count as u64,
            ] {
                h = fnv_u64(h, word);
            }
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_u64(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// 64-bit FNV-1a digest of a value's bytes.
pub fn value_digest(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of `len` repeated `fill` bytes — the shape of every value the
/// deterministic clients write and the stores are populated with, computed
/// without materializing the buffer.
pub fn fill_digest(fill: u8, len: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for _ in 0..len {
        h = (h ^ fill as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_discriminate() {
        assert_eq!(value_digest(&[7u8; 64]), fill_digest(7, 64));
        assert_ne!(fill_digest(7, 64), fill_digest(8, 64));
        assert_ne!(fill_digest(7, 64), fill_digest(7, 63));
    }

    #[test]
    fn responses_match_and_duplicates_are_ignored() {
        let mut h = History::new();
        h.invoke(0, 0, OpClass::Put, 5, Some(11), 0, 100);
        h.invoke(1, 0, OpClass::Get, 5, None, 0, 120);
        h.response(1, 0, 300, true, Some(11), 0);
        h.response(1, 0, 400, true, Some(99), 0); // dup: ignored
        h.response(2, 9, 400, true, None, 0); // never invoked: ignored
        assert_eq!(h.len(), 2);
        let g = &h.records()[1];
        assert_eq!(g.response_ps, Some(300));
        assert_eq!(g.digest, Some(11));
        assert!(h.records()[0].pending());
    }

    #[test]
    fn history_digest_is_order_sensitive() {
        let mut a = History::new();
        a.invoke(0, 0, OpClass::Get, 1, None, 0, 10);
        a.invoke(0, 1, OpClass::Get, 2, None, 0, 20);
        let mut b = History::new();
        b.invoke(0, 1, OpClass::Get, 2, None, 0, 20);
        b.invoke(0, 0, OpClass::Get, 1, None, 0, 10);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn failed_ops_stay_pending() {
        let mut h = History::new();
        h.invoke(0, 0, OpClass::Put, 5, Some(1), 0, 100);
        h.fail(0, 0);
        assert!(h.records()[0].pending());
        // A very late response after the client gave up is ignored.
        h.response(0, 0, 999, true, None, 0);
        assert!(h.records()[0].pending());
    }
}
