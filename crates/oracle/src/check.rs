//! The linearizability checker.
//!
//! Point operations (get/put/delete) are partitioned by key — linearizability
//! is compositional over disjoint objects, so a history is linearizable iff
//! each per-key sub-history is — and each partition is checked by Wing–Gong
//! search against a single-register model: the key is either absent or holds
//! a value digest. Pending operations (no accepted response) may be
//! linearized at any point after their invoke or dropped entirely, matching
//! the semantics of a timed-out request whose delayed copy may still execute.
//!
//! Range scans cannot be assigned to one key's partition. Each completed
//! scan is instead checked against *presence bounds* at its linearization
//! window `[invoke, response]`: the returned count must be at least the
//! number of keys in range that were definitely present for the whole window
//! (clipped to the requested limit) and at most the number possibly present
//! at any point of it. A count above the upper bound returned phantom keys;
//! one below the lower bound dropped keys. The bounds are conservative, so
//! they stay sound for the hybrid CR/MR scan path's non-atomic traversals.

use std::collections::{BTreeMap, HashSet};

use crate::history::{History, OpClass};

/// The store's state before the run: keys `0..keys` populated with values
/// digesting to `value_digest`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InitialState {
    /// Pre-populated key count (keys `0..keys`).
    pub keys: u64,
    /// Digest of every pre-populated value.
    pub value_digest: u64,
}

/// One checker finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The key whose partition failed, or `None` for a scan violation.
    pub key: Option<u64>,
    /// Human-readable description of the failure.
    pub detail: String,
}

/// Checker outcome and statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Point operations checked.
    pub point_ops: usize,
    /// Completed scans checked.
    pub scans: usize,
    /// Distinct keys with point operations.
    pub keys: usize,
    /// Operations that never received a response (checked as optional).
    pub pending: usize,
    /// All violations found (empty = linearizable).
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the history is linearizable.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One point op projected into a key's partition.
#[derive(Clone, Copy, Debug)]
struct Entry {
    inv: u64,
    /// `u64::MAX` while pending.
    ret: u64,
    class: OpClass,
    ok: bool,
    digest: Option<u64>,
    client: u32,
    seq: u64,
}

impl Entry {
    fn pending(&self) -> bool {
        self.ret == u64::MAX
    }
}

/// Mutation summary per key, for the scan presence bounds.
#[derive(Clone, Copy, Debug)]
struct KeyMut {
    /// Earliest accepted response among successful puts (`MAX` if none).
    earliest_put_resp: u64,
    /// Earliest invoke among all puts, pending included (`MAX` if none).
    earliest_put_inv: u64,
    /// Earliest invoke among all deletes, pending included (`MAX` if none).
    earliest_del_inv: u64,
}

impl Default for KeyMut {
    fn default() -> Self {
        KeyMut {
            earliest_put_resp: u64::MAX,
            earliest_put_inv: u64::MAX,
            earliest_del_inv: u64::MAX,
        }
    }
}

/// Node-expansion budget per key partition. Real histories have bounded
/// concurrency (the closed-loop window), so hitting this means either a
/// pathological history or a checker bug — both reported loudly.
const SEARCH_BUDGET: usize = 2_000_000;

/// Checks `history` against the sequential model starting from `init`.
pub fn check(history: &History, init: &InitialState) -> Report {
    let mut report = Report::default();
    let mut per_key: BTreeMap<u64, Vec<Entry>> = BTreeMap::new();
    let mut muts: BTreeMap<u64, KeyMut> = BTreeMap::new();
    let mut scans = Vec::new();

    for r in history.records() {
        if r.pending() {
            report.pending += 1;
        }
        match r.class {
            OpClass::Scan => {
                if !r.pending() && r.ok {
                    scans.push(r.clone());
                }
            }
            class => {
                // Pending reads carry no obligation and no effect: drop them.
                if r.pending() && class == OpClass::Get {
                    continue;
                }
                report.point_ops += 1;
                let e = Entry {
                    inv: r.invoke_ps,
                    ret: r.response_ps.unwrap_or(u64::MAX),
                    class,
                    ok: r.ok,
                    digest: r.digest,
                    client: r.client,
                    seq: r.seq,
                };
                per_key.entry(r.key).or_default().push(e);
                if class == OpClass::Put {
                    let m = muts.entry(r.key).or_default();
                    m.earliest_put_inv = m.earliest_put_inv.min(e.inv);
                    if !e.pending() && e.ok {
                        m.earliest_put_resp = m.earliest_put_resp.min(e.ret);
                    }
                } else if class == OpClass::Delete {
                    let m = muts.entry(r.key).or_default();
                    m.earliest_del_inv = m.earliest_del_inv.min(e.inv);
                }
            }
        }
    }

    report.keys = per_key.len();
    for (key, mut ops) in per_key {
        ops.sort_by_key(|e| (e.inv, e.ret));
        let initial = (key < init.keys).then_some(init.value_digest);
        if let Err(detail) = linearizable_register(initial, &ops) {
            report.violations.push(Violation {
                key: Some(key),
                detail,
            });
        }
    }

    report.scans = scans.len();
    for s in &scans {
        let (inv, ret) = (s.invoke_ps, s.response_ps.unwrap());
        let limit = s.scan_limit as u64;
        // Presence bounds over keys >= s.key at the scan window.
        let base = init.keys.saturating_sub(s.key);
        let mut definite = base;
        let mut possible = base;
        for (&k, m) in muts.range(s.key..) {
            let initial = k < init.keys;
            let is_definite = (initial || m.earliest_put_resp <= inv) && m.earliest_del_inv >= ret;
            let is_possible = initial || m.earliest_put_inv < ret;
            if initial && !is_definite {
                definite -= 1;
            }
            if !initial && is_definite {
                definite += 1;
            }
            if !initial && is_possible {
                possible += 1;
            }
        }
        let lower = limit.min(definite);
        let upper = limit.min(possible);
        let count = s.scan_count as u64;
        if count < lower || count > upper {
            let kind = if count < lower { "dropped" } else { "phantom" };
            report.violations.push(Violation {
                key: None,
                detail: format!(
                    "scan(client {}, seq {}) from key {} limit {} returned {count} \
                     items, outside atomic-window bounds [{lower}, {upper}] \
                     ({kind} keys)",
                    s.client, s.seq, s.key, s.scan_limit
                ),
            });
        }
    }

    report
}

/// What applying one op to the register state yields, or `None` if the op's
/// observed result is impossible in that state.
fn apply(state: Option<u64>, e: &Entry) -> Option<Option<u64>> {
    match e.class {
        OpClass::Get => match (e.ok, state, e.digest) {
            (true, Some(s), Some(d)) if s == d => Some(state),
            // An ok get with no digest recorded cannot be value-checked;
            // require only presence.
            (true, Some(_), None) => Some(state),
            (false, None, _) => Some(state),
            _ => None,
        },
        OpClass::Put => {
            if e.pending() || e.ok {
                // Upserts have no precondition; the write's effect is the
                // digest recorded at invoke.
                Some(Some(e.digest.unwrap_or(0)))
            } else {
                // A failed put (index full / malformed) applied nothing.
                Some(state)
            }
        }
        OpClass::Delete => {
            if e.pending() {
                Some(None)
            } else if e.ok {
                state.is_some().then_some(None)
            } else {
                state.is_none().then_some(None)
            }
        }
        OpClass::Scan => unreachable!("scans are not point ops"),
    }
}

/// Wing–Gong search: is this one-key history linearizable against a
/// present-digest-or-absent register starting from `init`?
///
/// The search explores "linearize next any op whose invoke precedes every
/// unlinearized completed op's response", memoizing (linearized-set, state)
/// configurations. Pending ops are optional: acceptance requires only that
/// every *completed* op is linearized.
fn linearizable_register(init: Option<u64>, ops: &[Entry]) -> Result<(), String> {
    let n = ops.len();
    if n == 0 {
        return Ok(());
    }
    let words = n.div_ceil(64);
    let completed_total = ops.iter().filter(|e| !e.pending()).count();

    // DFS over configurations.
    let mut seen: HashSet<(Box<[u64]>, Option<u64>)> = HashSet::new();
    let mut stack: Vec<(Box<[u64]>, Option<u64>, usize)> =
        vec![(vec![0u64; words].into_boxed_slice(), init, 0)];
    let mut expanded = 0usize;

    while let Some((bits, state, done_completed)) = stack.pop() {
        if done_completed == completed_total {
            return Ok(());
        }
        expanded += 1;
        if expanded > SEARCH_BUDGET {
            return Err(format!(
                "search budget exceeded after {expanded} configurations \
                 ({n} ops; raise SEARCH_BUDGET or reduce the run)"
            ));
        }
        // Minimal-op frontier: an op may linearize next only if no
        // unlinearized op responded before it was invoked.
        let mut min_ret = u64::MAX;
        for (i, e) in ops.iter().enumerate() {
            if bits[i / 64] & (1 << (i % 64)) == 0 {
                min_ret = min_ret.min(e.ret);
            }
        }
        for (i, e) in ops.iter().enumerate() {
            if bits[i / 64] & (1 << (i % 64)) != 0 || e.inv > min_ret {
                continue;
            }
            let Some(next_state) = apply(state, e) else {
                continue;
            };
            let mut next_bits = bits.clone();
            next_bits[i / 64] |= 1 << (i % 64);
            let next_done = done_completed + usize::from(!e.pending());
            if next_done == completed_total {
                return Ok(());
            }
            if seen.insert((next_bits.clone(), next_state)) {
                stack.push((next_bits, next_state, next_done));
            }
        }
    }

    Err(describe_failure(init, ops))
}

/// Builds the failure message: the initial state and a bounded dump of the
/// partition's ops in invoke order.
fn describe_failure(init: Option<u64>, ops: &[Entry]) -> String {
    const SHOW: usize = 16;
    let mut s = format!(
        "no linearization exists ({} ops, initial {:?}); ops:",
        ops.len(),
        init
    );
    for e in ops.iter().take(SHOW) {
        s.push_str(&format!(
            "\n  {:?} client {} seq {} [{}, {}] ok={} digest={:?}",
            e.class,
            e.client,
            e.seq,
            e.inv,
            if e.pending() {
                "pending".to_string()
            } else {
                e.ret.to_string()
            },
            e.ok,
            e.digest
        ));
    }
    if ops.len() > SHOW {
        s.push_str(&format!("\n  ... {} more", ops.len() - SHOW));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;

    const INIT: InitialState = InitialState {
        keys: 10,
        value_digest: 0xab,
    };

    fn get(h: &mut History, c: u32, s: u64, key: u64, at: u64, ret: u64, d: Option<u64>) {
        h.invoke(c, s, OpClass::Get, key, None, 0, at);
        h.response(c, s, ret, d.is_some(), d, 0);
    }

    fn put(h: &mut History, c: u32, s: u64, key: u64, at: u64, ret: u64, d: u64) {
        h.invoke(c, s, OpClass::Put, key, Some(d), 0, at);
        h.response(c, s, ret, true, None, 0);
    }

    fn del(h: &mut History, c: u32, s: u64, key: u64, at: u64, ret: u64, ok: bool) {
        h.invoke(c, s, OpClass::Delete, key, None, 0, at);
        h.response(c, s, ret, ok, None, 0);
    }

    #[test]
    fn sequential_history_passes() {
        let mut h = History::new();
        get(&mut h, 0, 0, 3, 10, 20, Some(0xab));
        put(&mut h, 0, 1, 3, 30, 40, 7);
        get(&mut h, 1, 0, 3, 50, 60, Some(7));
        del(&mut h, 1, 1, 3, 70, 80, true);
        get(&mut h, 0, 2, 3, 90, 100, None);
        del(&mut h, 0, 3, 3, 110, 120, false);
        let r = check(&h, &INIT);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.point_ops, 6);
        assert_eq!(r.keys, 1);
    }

    #[test]
    fn missing_key_read_passes_and_insert_makes_it_present() {
        let mut h = History::new();
        get(&mut h, 0, 0, 42, 10, 20, None); // beyond initial keys
        put(&mut h, 0, 1, 42, 30, 40, 5);
        get(&mut h, 0, 2, 42, 50, 60, Some(5));
        assert!(check(&h, &INIT).ok());
    }

    #[test]
    fn stale_read_is_caught() {
        let mut h = History::new();
        put(&mut h, 0, 0, 3, 10, 20, 7);
        // Strictly after the put completed, a get returns the initial value.
        get(&mut h, 1, 0, 3, 30, 40, Some(0xab));
        let r = check(&h, &INIT);
        assert!(!r.ok());
        assert_eq!(r.violations[0].key, Some(3));
    }

    #[test]
    fn lost_update_is_caught() {
        let mut h = History::new();
        put(&mut h, 0, 0, 3, 10, 20, 7); // acked but (buggy server) lost
        put(&mut h, 1, 0, 3, 30, 40, 9);
        get(&mut h, 0, 1, 3, 50, 60, Some(9));
        // Later read observes the first put's value resurrected.
        get(&mut h, 1, 1, 3, 70, 80, Some(7));
        assert!(!check(&h, &INIT).ok());
    }

    #[test]
    fn concurrent_puts_linearize_in_either_order() {
        let mut h = History::new();
        put(&mut h, 0, 0, 3, 10, 50, 7);
        put(&mut h, 1, 0, 3, 20, 60, 9); // overlaps the first
        get(&mut h, 2, 0, 3, 70, 80, Some(7)); // consistent with order 9,7
        assert!(check(&h, &INIT).ok());
        let mut h2 = History::new();
        put(&mut h2, 0, 0, 3, 10, 50, 7);
        put(&mut h2, 1, 0, 3, 20, 60, 9);
        get(&mut h2, 2, 0, 3, 70, 80, Some(9)); // order 7,9 also fine
        assert!(check(&h2, &INIT).ok());
    }

    #[test]
    fn pending_put_may_or_may_not_apply() {
        // A put that never got a response may be observed...
        let mut h = History::new();
        h.invoke(0, 0, OpClass::Put, 3, Some(7), 0, 10);
        get(&mut h, 1, 0, 3, 50, 60, Some(7));
        assert!(check(&h, &INIT).ok());
        // ...or not observed.
        let mut h2 = History::new();
        h2.invoke(0, 0, OpClass::Put, 3, Some(7), 0, 10);
        get(&mut h2, 1, 0, 3, 50, 60, Some(0xab));
        assert!(check(&h2, &INIT).ok());
        // But it cannot resurrect over a later completed put once observed
        // ordering pins it down: put7 pending, put9 done, read9, read7.
        let mut h3 = History::new();
        h3.invoke(0, 0, OpClass::Put, 3, Some(7), 0, 10);
        put(&mut h3, 1, 0, 3, 20, 30, 9);
        get(&mut h3, 2, 0, 3, 40, 50, Some(9));
        get(&mut h3, 2, 1, 3, 60, 70, Some(7));
        // Still linearizable! The pending put may linearize between the
        // reads — its window never closed. This is the forgiving case the
        // zombie-dedup bug must *not* hide behind when the put DID respond.
        assert!(check(&h3, &INIT).ok());
        // Same shape but put7 completed before put9 was invoked: violation.
        let mut h4 = History::new();
        put(&mut h4, 0, 0, 3, 10, 15, 7);
        put(&mut h4, 1, 0, 3, 20, 30, 9);
        get(&mut h4, 2, 0, 3, 40, 50, Some(9));
        get(&mut h4, 2, 1, 3, 60, 70, Some(7));
        assert!(!check(&h4, &INIT).ok());
    }

    #[test]
    fn scan_bounds_catch_phantom_and_dropped_keys() {
        let scan = |count: u32| {
            let mut h = History::new();
            h.invoke(0, 0, OpClass::Scan, 2, None, 5, 10);
            h.response(0, 0, 20, true, None, count);
            h
        };
        // Keys 2..10 present, limit 5 → exactly 5.
        assert!(check(&scan(5), &INIT).ok());
        assert!(!check(&scan(4), &INIT).ok(), "dropped key undetected");
        assert!(!check(&scan(6), &INIT).ok(), "phantom key undetected");
        // Near the end of the keyspace: keys 8, 9 → exactly 2.
        let tail = |count: u32| {
            let mut h = History::new();
            h.invoke(0, 0, OpClass::Scan, 8, None, 5, 10);
            h.response(0, 0, 20, true, None, count);
            h
        };
        assert!(check(&tail(2), &INIT).ok());
        assert!(!check(&tail(3), &INIT).ok());
    }

    #[test]
    fn scan_bounds_widen_under_concurrent_mutation() {
        // An insert of key 40 concurrent with the scan: count may or may not
        // include it.
        let run = |count: u32| {
            let mut h = History::new();
            h.invoke(0, 0, OpClass::Put, 40, Some(1), 0, 5);
            h.response(0, 0, 25, true, None, 0); // overlaps the scan window
            h.invoke(1, 0, OpClass::Scan, 8, None, 5, 10);
            h.response(1, 0, 20, true, None, count);
            h
        };
        assert!(
            check(&run(2), &INIT).ok(),
            "scan may miss concurrent insert"
        );
        assert!(check(&run(3), &INIT).ok(), "scan may see concurrent insert");
        assert!(!check(&run(4), &INIT).ok());
        // A delete invoked before the scan window's end makes an initial key
        // optional; one completed before the scan's invoke with no overlap
        // still allows either bound only if invoked pre-window.
        let dele = |count: u32| {
            let mut h = History::new();
            h.invoke(0, 0, OpClass::Delete, 9, None, 0, 5);
            h.response(0, 0, 8, true, None, 0); // completed before scan
            h.invoke(1, 0, OpClass::Scan, 8, None, 5, 10);
            h.response(1, 0, 20, true, None, count);
            h
        };
        // Key 9 deleted: only key 8 definitely present; 9 still "possible"
        // by the conservative bound (sound, not tight).
        assert!(check(&dele(1), &INIT).ok());
        assert!(check(&dele(2), &INIT).ok());
        assert!(!check(&dele(0), &INIT).ok(), "key 8 was dropped");
    }

    #[test]
    fn empty_history_passes() {
        let r = check(&History::new(), &INIT);
        assert!(r.ok());
        assert_eq!(r.point_ops + r.scans, 0);
    }
}
