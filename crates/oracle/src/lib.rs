//! Linearizability oracle for the simulated KV systems.
//!
//! The chaos suite (ledgers, throughput bounds) proves requests are not lost
//! or duplicated, but never that response *values* are correct — the bug
//! class FlexKV-style index-offloading races produce. This crate closes that
//! gap:
//!
//! * [`History`] — a per-run record of every operation's invoke and response
//!   as the *clients* observed them: key, op class, value digest, sequence
//!   number, and the simulated-time window `[invoke, response]`. Recording is
//!   pure host-side bookkeeping: it charges no simulated time and draws no
//!   randomness, so an instrumented run is byte-identical to a bare one.
//! * [`check`] — a linearizability checker validating a history against a
//!   sequential `BTreeMap` model using Wing–Gong search. Point operations
//!   are checked per key (linearizability is compositional, so partitioning
//!   by key is sound and keeps the search tractable); range scans are
//!   checked against presence bounds derived from the mutation history at
//!   the scan's linearization window (no phantom keys, no dropped keys).
//!
//! Values are compared by 64-bit FNV-1a digest. Clients write deterministic
//! per-client fill bytes, so digests discriminate between writers without
//! carrying payloads in the history.

pub mod check;
pub mod history;

pub use check::{check, InitialState, Report, Violation};
pub use history::{fill_digest, value_digest, History, OpClass, OpRecord};
