//! Strategies for collections.

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};
use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A target size band for generated collections (half-open).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.lo < self.hi);
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug)]
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` with between `size.lo` and `size.hi - 1` distinct elements
/// (duplicates drawn from `element` are merged, so sparse domains may yield
/// fewer elements than requested — same caveat as upstream).
pub fn btree_set<E>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
where
    E: Strategy,
    E::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug)]
pub struct BTreeSetStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for BTreeSetStrategy<E>
where
    E::Value: Ord,
{
    type Value = BTreeSet<E::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts: small domains cannot fill large targets.
        for _ in 0..target.saturating_mul(4).max(8) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}
