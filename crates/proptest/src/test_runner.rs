//! Deterministic case runner: configuration, RNG, and failure reporting.

/// Per-test configuration (a subset of upstream's fields).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A splitmix64 generator seeded from the test function's name, so every
/// run of a given property draws the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from `name` (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Unbiased uniform draw from `0..span` (Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Prints the failing case's inputs if dropped while panicking.
pub struct PanicGuard {
    test: &'static str,
    case: u32,
    values: String,
    armed: bool,
}

impl PanicGuard {
    /// Arms the guard with this case's formatted inputs.
    pub fn arm(test: &'static str, case: u32, values: String) -> Self {
        PanicGuard {
            test,
            case,
            values,
            armed: true,
        }
    }

    /// Declares the case passed; the guard prints nothing.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} with inputs: {}",
                self.test, self.case, self.values
            );
        }
    }
}
