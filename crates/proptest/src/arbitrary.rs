//! `any::<T>()` — canonical strategies for common types.

use core::fmt::Debug;
use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) {}
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    /// `None` one case in four — biased toward `Some` so sequences of
    /// optional operations stay productive.
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}
