//! Composable value-generation strategies.

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, so
/// `Box<dyn Strategy<Value = V>>` works for heterogeneous unions.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Generates every element of a tuple of strategies — the [`crate::proptest!`]
/// macro's bridge from N parameter patterns to N drawn values.
pub trait GenerateTuple {
    /// Tuple of generated values, one per strategy.
    type Values: Debug;
    /// Draws each strategy once, left to right.
    fn generate_all(&self, rng: &mut TestRng) -> Self::Values;
}

impl GenerateTuple for () {
    type Values = ();
    fn generate_all(&self, _rng: &mut TestRng) {}
}

macro_rules! generate_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> GenerateTuple for ($($name,)+) {
            type Values = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate_all(&self, rng: &mut TestRng) -> Self::Values {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

generate_tuple!(A);
generate_tuple!(A, B);
generate_tuple!(A, B, C);
generate_tuple!(A, B, C, D);
generate_tuple!(A, B, C, D, E);
generate_tuple!(A, B, C, D, E, F);
