//! A hermetic, dependency-free subset of the `proptest` crate.
//!
//! The workspace builds in offline environments where crates.io is
//! unreachable, so this local crate provides the slice of proptest's API the
//! test suites actually use: the [`proptest!`] macro, composable
//! [`strategy::Strategy`] values (ranges, tuples, [`strategy::Just`],
//! `prop_map`, `prop_flat_map`, [`prop_oneof!`]), [`arbitrary::any`], and the
//! [`collection`] helpers.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via a panic guard)
//!   but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name, so failures reproduce exactly across runs and machines —
//!   there is no persistence file because none is needed.
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: `fn name(pat in strategy, ...) { body }`.
///
/// Each listed function runs `config.cases` generated cases (the `#[test]`
/// attribute is written by the caller, as with upstream proptest). On panic,
/// the failing case's inputs are printed by a drop guard.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            #[allow(unused_variables)]
            let __strategies = ($($strategy,)*);
            for __case in 0..__config.cases {
                let __values = $crate::strategy::GenerateTuple::generate_all(
                    &__strategies,
                    &mut __rng,
                );
                let __guard = $crate::test_runner::PanicGuard::arm(
                    stringify!($name),
                    __case,
                    format!("{:?}", &__values),
                );
                #[allow(unused_parens)]
                let ($($pat,)*) = __values;
                { $body }
                __guard.disarm();
            }
        }
    )*};
}
