//! Workload generators for the μTPS evaluation.
//!
//! * [`zipf::ZipfGen`] — YCSB's zipfian generator (θ = 0.99 by default) with
//!   the standard scrambling so hot ranks spread across the keyspace;
//! * [`ycsb`] — YCSB core workloads A/B/C/E plus the paper's custom mixes
//!   (100% put skewed/uniform, 100% get uniform);
//! * [`etc`] — Meta's ETC pool: the published value-size mixture
//!   (1–13 B zipfian 40%, 14–300 B zipfian 55%, > 300 B uniform 5%) with a
//!   configurable get ratio (§5.2.2);
//! * [`twitter`] — the three Twitter cluster traces of Table 1, synthesized
//!   from their published parameters (put ratio, average value size, zipf α);
//! * [`dynamic`] — piecewise workloads that shift parameters at a given time,
//!   driving the auto-tuner experiment of Figure 14;
//! * [`replay`] — record/replay tapes (the paper's §2.2.1 deterministic-replay
//!   methodology).
//!
//! The production traces themselves are proprietary; the paper characterizes
//! them by exactly the parameters used here, which is what drives the
//! reported behaviour (see DESIGN.md, substitution table).

pub mod dynamic;
pub mod etc;
pub mod replay;
pub mod rng;
pub mod twitter;
pub mod ycsb;
pub mod zipf;

pub use dynamic::{DynamicWorkload, Phase};
pub use etc::EtcWorkload;
pub use replay::{record, ReplayWorkload, Tape};
pub use twitter::{TwitterCluster, TwitterWorkload};
pub use ycsb::{Mix, Op, YcsbWorkload};
pub use zipf::{KeyDist, ZipfGen};

/// Anything that produces a stream of KV operations.
pub trait Workload {
    /// The next operation to issue.
    fn next_op(&mut self) -> Op;

    /// Keyspace size (keys are `0..keyspace`).
    fn keyspace(&self) -> u64;

    /// Informs the workload of elapsed (simulated) time — dynamic workloads
    /// switch phases here; static workloads ignore it.
    fn set_time_ns(&mut self, _now_ns: u64) {}
}
