//! A small, self-contained pseudo-random number generator.
//!
//! The generators only need a fast, seedable, statistically solid uniform
//! source; this module provides one (xoshiro256++ seeded via splitmix64)
//! with the narrow API surface the workload generators use, so the
//! workspace builds without any external registry dependency. Streams are
//! fully determined by the seed — two generators built from the same seed
//! produce identical sequences on every platform.

/// A seedable xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose entire state is derived from `seed` by
    /// splitmix64 (the reference seeding procedure for xoshiro).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample of `T` (see [`SampleUniform`] for the supported
    /// types); mirrors `rand::Rng::gen`.
    pub fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`; mirrors `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait SampleUniform {
    /// Draws one uniform sample.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut SmallRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u64 {
    fn sample(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample(rng: &mut SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for bool {
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait UniformRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

/// Unbiased sample of `0..span` via Lemire's multiply-then-reject method.
fn below(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let m = (x as u128) * (span as u128);
            ((m >> 64) as u64, m as u64)
        };
        // Reject the sliver that would bias low results.
        if lo >= span.wrapping_neg() % span {
            return hi;
        }
    }
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uniform_range!(u64, usize, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn");
        for _ in 0..1_000 {
            let v = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} skewed");
        }
    }
}
