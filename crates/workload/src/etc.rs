//! Meta's ETC pool workload (§5.2.2, following Atikoglu et al. \[16\]).
//!
//! The paper uses ETC's default key/value size distributions and sweeps the
//! get ratio over {10%, 50%, 90%}. Value sizes follow the published mixture:
//! 40% in 1–13 B (zipfian within the band), 55% in 14–300 B (zipfian), and
//! 5% above 300 B (uniform up to 1 KB here, keeping within the paper's item
//! size envelope). Keys are zipfian (θ = 0.99), matching the skewed ETC
//! access pattern.

use crate::rng::SmallRng;

use crate::ycsb::Op;
use crate::zipf::{rng_for, KeyDist};
use crate::Workload;

/// The ETC pool generator.
#[derive(Clone, Debug)]
pub struct EtcWorkload {
    get_ratio: f64,
    dist: KeyDist,
    rng: SmallRng,
    max_large: usize,
}

impl EtcWorkload {
    /// Creates an ETC generator over `keyspace` keys with the given get
    /// ratio (the paper uses 0.1, 0.5, 0.9).
    ///
    /// # Panics
    ///
    /// Panics if `get_ratio` is outside `[0, 1]`.
    pub fn new(keyspace: u64, get_ratio: f64, seed: u64, stream: u64) -> Self {
        assert!((0.0..=1.0).contains(&get_ratio), "get_ratio out of range");
        EtcWorkload {
            get_ratio,
            dist: KeyDist::zipf(keyspace, 0.99),
            rng: rng_for(seed ^ 0xE7C, stream),
            max_large: 1024,
        }
    }

    /// Draws a value size from the ETC mixture.
    pub fn sample_value_len(&mut self) -> usize {
        let band: f64 = self.rng.gen();
        if band < 0.40 {
            zipf_in_band(&mut self.rng, 1, 13)
        } else if band < 0.95 {
            zipf_in_band(&mut self.rng, 14, 300)
        } else {
            self.rng.gen_range(301..=self.max_large)
        }
    }

    /// The configured get ratio.
    pub fn get_ratio(&self) -> f64 {
        self.get_ratio
    }
}

/// A crude banded zipfian: small sizes in the band are more common,
/// p(size) ∝ 1/(size - lo + 1).
fn zipf_in_band(rng: &mut SmallRng, lo: usize, hi: usize) -> usize {
    let n = (hi - lo + 1) as f64;
    // Inverse CDF of 1/x on [1, n+1): x = (n+1)^u.
    let u: f64 = rng.gen();
    let x = (n + 1.0).powf(u);
    lo + (x as usize - 1).min(hi - lo)
}

impl Workload for EtcWorkload {
    fn next_op(&mut self) -> Op {
        let key = self.dist.sample(&mut self.rng);
        if self.rng.gen::<f64>() < self.get_ratio {
            Op::Get { key }
        } else {
            let value_len = self.sample_value_len();
            Op::Put { key, value_len }
        }
    }

    fn keyspace(&self) -> u64 {
        self.dist.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_size_bands_match_published_mixture() {
        let mut w = EtcWorkload::new(10_000, 0.0, 5, 0);
        let n = 100_000;
        let (mut tiny, mut mid, mut large) = (0, 0, 0);
        let mut sum = 0usize;
        for _ in 0..n {
            match w.next_op() {
                Op::Put { value_len, .. } => {
                    sum += value_len;
                    match value_len {
                        1..=13 => tiny += 1,
                        14..=300 => mid += 1,
                        _ => large += 1,
                    }
                }
                _ => panic!("expected put"),
            }
        }
        let f = |c: i32| c as f64 / n as f64;
        assert!((f(tiny) - 0.40).abs() < 0.01, "tiny {}", f(tiny));
        assert!((f(mid) - 0.55).abs() < 0.01, "mid {}", f(mid));
        assert!((f(large) - 0.05).abs() < 0.01, "large {}", f(large));
        // Within each band small values dominate.
        let mean = sum as f64 / n as f64;
        assert!(mean < 120.0, "mean value size too large: {mean}");
    }

    #[test]
    fn get_ratio_respected() {
        for ratio in [0.1, 0.5, 0.9] {
            let mut w = EtcWorkload::new(1_000, ratio, 6, 0);
            let n = 50_000;
            let gets = (0..n)
                .filter(|_| matches!(w.next_op(), Op::Get { .. }))
                .count();
            let got = gets as f64 / n as f64;
            assert!((got - ratio).abs() < 0.01, "ratio {ratio}: got {got}");
        }
    }

    #[test]
    fn keys_are_skewed() {
        let mut w = EtcWorkload::new(100_000, 0.5, 7, 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(w.next_op().key()).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 500, "no hot key under zipf: max {max}");
    }
}
