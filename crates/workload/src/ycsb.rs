//! YCSB core workloads and the paper's custom operation mixes.

use crate::rng::SmallRng;

use crate::zipf::{rng_for, KeyDist};
use crate::Workload;

/// One KV operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the value of `key`.
    Get {
        /// Target key.
        key: u64,
    },
    /// Write `value_len` bytes to `key`.
    Put {
        /// Target key.
        key: u64,
        /// Payload length in bytes.
        value_len: usize,
    },
    /// Read up to `count` items starting at `key`.
    Scan {
        /// Range start key.
        key: u64,
        /// Number of items requested.
        count: usize,
    },
    /// Remove `key`.
    Delete {
        /// Target key.
        key: u64,
    },
}

impl Op {
    /// The key this operation targets.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Get { key } | Op::Put { key, .. } | Op::Scan { key, .. } | Op::Delete { key } => {
                key
            }
        }
    }

    /// Whether this is a write.
    pub fn is_put(&self) -> bool {
        matches!(self, Op::Put { .. })
    }
}

/// An operation mix: fractions of put/get/scan/delete (must sum to 1).
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Fraction of put operations.
    pub put: f64,
    /// Fraction of get operations.
    pub get: f64,
    /// Fraction of scan operations.
    pub scan: f64,
    /// Fraction of delete operations.
    pub delete: f64,
}

impl Mix {
    /// YCSB-A: 50% put, 50% get.
    pub const A: Mix = Mix {
        put: 0.5,
        get: 0.5,
        scan: 0.0,
        delete: 0.0,
    };
    /// YCSB-B: 5% put, 95% get.
    pub const B: Mix = Mix {
        put: 0.05,
        get: 0.95,
        scan: 0.0,
        delete: 0.0,
    };
    /// YCSB-C: 100% get.
    pub const C: Mix = Mix {
        put: 0.0,
        get: 1.0,
        scan: 0.0,
        delete: 0.0,
    };
    /// YCSB-E: 5% put, 95% scan.
    pub const E: Mix = Mix {
        put: 0.05,
        get: 0.0,
        scan: 0.95,
        delete: 0.0,
    };
    /// The paper's custom 100%-put mix.
    pub const PUT_ONLY: Mix = Mix {
        put: 1.0,
        get: 0.0,
        scan: 0.0,
        delete: 0.0,
    };
    /// Scan-only (Figure 8a).
    pub const SCAN_ONLY: Mix = Mix {
        put: 0.0,
        get: 0.0,
        scan: 1.0,
        delete: 0.0,
    };
    /// A churn mix exercising the full API including deletes.
    pub const CHURN: Mix = Mix {
        put: 0.3,
        get: 0.5,
        scan: 0.0,
        delete: 0.2,
    };

    /// Validates that the fractions sum to 1.
    pub fn check(&self) {
        let s = self.put + self.get + self.scan + self.delete;
        assert!((s - 1.0).abs() < 1e-9, "mix must sum to 1, got {s}");
    }
}

/// A YCSB-style workload generator.
#[derive(Clone, Debug)]
pub struct YcsbWorkload {
    mix: Mix,
    dist: KeyDist,
    value_len: usize,
    avg_scan_len: usize,
    rng: SmallRng,
}

impl YcsbWorkload {
    /// Creates a generator.
    ///
    /// * `mix` — operation mix (see the [`Mix`] constants);
    /// * `dist` — key distribution;
    /// * `value_len` — item size (the paper sweeps 8 B – 1 KB);
    /// * `avg_scan_len` — mean scan length (the paper uses 50);
    /// * `seed`/`stream` — deterministic RNG stream selection.
    pub fn new(
        mix: Mix,
        dist: KeyDist,
        value_len: usize,
        avg_scan_len: usize,
        seed: u64,
        stream: u64,
    ) -> Self {
        mix.check();
        YcsbWorkload {
            mix,
            dist,
            value_len,
            avg_scan_len,
            rng: rng_for(seed, stream),
        }
    }

    /// The key distribution in use.
    pub fn dist(&self) -> &KeyDist {
        &self.dist
    }

    /// The configured item size.
    pub fn value_len(&self) -> usize {
        self.value_len
    }
}

impl Workload for YcsbWorkload {
    fn next_op(&mut self) -> Op {
        let key = self.dist.sample(&mut self.rng);
        let r: f64 = self.rng.gen();
        if r < self.mix.put {
            Op::Put {
                key,
                value_len: self.value_len,
            }
        } else if r < self.mix.put + self.mix.get {
            Op::Get { key }
        } else if r < self.mix.put + self.mix.get + self.mix.scan {
            // Uniform in [1, 2·avg] keeps the requested mean.
            let count = self.rng.gen_range(1..=self.avg_scan_len * 2);
            Op::Scan { key, count }
        } else {
            Op::Delete { key }
        }
    }

    fn keyspace(&self) -> u64 {
        self.dist.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fractions(mix: Mix, n: usize) -> (f64, f64, f64) {
        let mut w = YcsbWorkload::new(mix, KeyDist::uniform(1000), 64, 50, 1, 0);
        let (mut p, mut g, mut s) = (0, 0, 0);
        for _ in 0..n {
            match w.next_op() {
                Op::Put { .. } => p += 1,
                Op::Get { .. } => g += 1,
                Op::Scan { .. } => s += 1,
                Op::Delete { .. } => {}
            }
        }
        (
            p as f64 / n as f64,
            g as f64 / n as f64,
            s as f64 / n as f64,
        )
    }

    #[test]
    fn mixes_match_requested_ratios() {
        let (p, g, s) = fractions(Mix::A, 50_000);
        assert!((p - 0.5).abs() < 0.02 && (g - 0.5).abs() < 0.02 && s == 0.0);
        let (p, g, _) = fractions(Mix::B, 50_000);
        assert!((p - 0.05).abs() < 0.01 && (g - 0.95).abs() < 0.01);
        let (p, g, s) = fractions(Mix::E, 50_000);
        assert!((p - 0.05).abs() < 0.01 && g == 0.0 && (s - 0.95).abs() < 0.01);
        let (p, _, _) = fractions(Mix::PUT_ONLY, 1_000);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn scan_lengths_average_out() {
        let mut w = YcsbWorkload::new(Mix::SCAN_ONLY, KeyDist::uniform(100), 8, 50, 2, 0);
        let mut total = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if let Op::Scan { count, .. } = w.next_op() {
                assert!((1..=100).contains(&count));
                total += count;
            } else {
                panic!("non-scan op");
            }
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 50.5).abs() < 1.0, "avg scan len {avg}");
    }

    #[test]
    fn keys_within_keyspace() {
        let mut w = YcsbWorkload::new(Mix::A, KeyDist::zipf(500, 0.99), 8, 50, 3, 1);
        for _ in 0..10_000 {
            assert!(w.next_op().key() < 500);
        }
        assert_eq!(w.keyspace(), 500);
    }

    #[test]
    #[should_panic(expected = "mix must sum to 1")]
    fn bad_mix_rejected() {
        let bad = Mix {
            put: 0.5,
            get: 0.0,
            scan: 0.0,
            delete: 0.0,
        };
        YcsbWorkload::new(bad, KeyDist::uniform(10), 8, 50, 0, 0);
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Get { key: 3 }.key(), 3);
        assert!(Op::Put {
            key: 1,
            value_len: 8
        }
        .is_put());
        assert!(!Op::Scan { key: 2, count: 5 }.is_put());
        assert_eq!(Op::Delete { key: 9 }.key(), 9);
    }

    #[test]
    fn churn_mix_produces_deletes() {
        let mut w = YcsbWorkload::new(Mix::CHURN, KeyDist::uniform(100), 8, 10, 4, 0);
        let dels = (0..10_000)
            .filter(|_| matches!(w.next_op(), Op::Delete { .. }))
            .count();
        assert!((1_800..2_200).contains(&dels), "deletes: {dels}");
    }
}
