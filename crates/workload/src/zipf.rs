//! Key distributions: uniform and YCSB-style (scrambled) zipfian.

use crate::rng::SmallRng;

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

/// A zipfian rank generator over `0..n` using YCSB's rejection-free method
/// (Gray et al.), with θ < 1.
///
/// Rank 0 is the most popular. Use [`ZipfGen::next_scrambled`] to spread hot
/// ranks across the keyspace as YCSB does.
#[derive(Clone, Debug)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfGen {
    /// Creates a generator over `0..n` with skew `theta` (YCSB default 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty keyspace");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta_cached(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfGen {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// [`Self::zeta`] behind a process-wide memo keyed on `(n, θ)`.
    ///
    /// Every client stream of a run (hundreds of them) builds a generator
    /// over the same keyspace, and a benchmark sweep repeats that across
    /// dozens of cells; the normalizer is a pure O(n) `powf` loop that
    /// would otherwise dominate setup wall-clock. The cached value is the
    /// bit-identical result of the same computation, so sampling is
    /// unchanged. Small keyspaces skip the memo (and its lock) entirely.
    fn zeta_cached(n: u64, theta: f64) -> f64 {
        use std::sync::Mutex;
        static MEMO: Mutex<Vec<((u64, u64), f64)>> = Mutex::new(Vec::new());
        if n < 65_536 {
            return Self::zeta(n, theta);
        }
        let key = (n, theta.to_bits());
        if let Some(&(_, z)) = MEMO
            .lock()
            .expect("zeta memo poisoned")
            .iter()
            .find(|&&(k, _)| k == key)
        {
            return z;
        }
        let z = Self::zeta(n, theta);
        MEMO.lock().expect("zeta memo poisoned").push((key, z));
        z
    }

    /// The harmonic-like normalizer Σ 1/i^θ for i in 1..=n.
    ///
    /// Exact up to 10 M, then extended with the integral approximation
    /// (error < 10⁻⁶ relative for the θ values used here).
    fn zeta(n: u64, theta: f64) -> f64 {
        let exact_n = n.min(10_000_000);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact_n {
            // ∫ x^-θ dx from exact_n to n.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (exact_n as f64).powf(a)) / a;
        }
        sum
    }

    /// Keyspace size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a zipfian *rank* in `0..n` (0 = hottest).
    pub fn next_rank(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    /// Draws a zipfian *key*: the rank scrambled over the keyspace, so the
    /// hottest keys are spread out rather than clustered at 0 (YCSB's
    /// `ScrambledZipfian`).
    pub fn next_scrambled(&self, rng: &mut SmallRng) -> u64 {
        mix64(self.next_rank(rng).wrapping_add(0x9e3779b97f4a7c15)) % self.n
    }

    /// The scrambled key corresponding to rank `r` (to identify the true hot
    /// set in tests and hotspot-redirection experiments).
    pub fn key_of_rank(&self, r: u64) -> u64 {
        mix64(r.wrapping_add(0x9e3779b97f4a7c15)) % self.n
    }

    /// Probability mass of rank `r`.
    pub fn rank_probability(&self, r: u64) -> f64 {
        1.0 / ((r + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Unused normalizer accessor kept for diagnostics.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A key distribution: uniform or zipfian.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over `0..n`.
    Uniform {
        /// Keyspace size.
        n: u64,
    },
    /// Scrambled zipfian.
    Zipf(ZipfGen),
}

impl KeyDist {
    /// Uniform distribution over `0..n`.
    pub fn uniform(n: u64) -> Self {
        KeyDist::Uniform { n }
    }

    /// Scrambled zipfian over `0..n` with skew `theta`.
    pub fn zipf(n: u64, theta: f64) -> Self {
        if theta == 0.0 {
            KeyDist::Uniform { n }
        } else {
            KeyDist::Zipf(ZipfGen::new(n, theta))
        }
    }

    /// Keyspace size.
    pub fn n(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipf(z) => z.n(),
        }
    }

    /// Draws a key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
            KeyDist::Zipf(z) => z.next_scrambled(rng),
        }
    }

    /// Whether the distribution is skewed.
    pub fn is_skewed(&self) -> bool {
        matches!(self, KeyDist::Zipf(_))
    }

    /// The `k` hottest keys under this distribution (empty for uniform).
    pub fn hottest_keys(&self, k: usize) -> Vec<u64> {
        match self {
            KeyDist::Uniform { .. } => Vec::new(),
            KeyDist::Zipf(z) => {
                let mut out: Vec<u64> = (0..(k as u64).min(z.n()))
                    .map(|r| z.key_of_rank(r))
                    .collect();
                out.dedup();
                out
            }
        }
    }
}

/// Creates a deterministic RNG for stream `id` under `seed`.
pub fn rng_for(seed: u64, id: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix64(seed.wrapping_add(mix64(id))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_follow_zipf_head_mass() {
        let z = ZipfGen::new(100_000, 0.99);
        let mut rng = rng_for(7, 0);
        let n = 200_000;
        let mut head = 0u64;
        for _ in 0..n {
            if z.next_rank(&mut rng) < 100 {
                head += 1;
            }
        }
        // Under θ=0.99, the top-100 ranks carry ≈ 40% of the mass for
        // n=100k: p(≤100) = zeta(100)/zeta(100000).
        let expect: f64 = (1..=100).map(|i| 1.0 / (i as f64).powf(0.99)).sum::<f64>()
            / (1..=100_000)
                .map(|i| 1.0 / (i as f64).powf(0.99))
                .sum::<f64>();
        let got = head as f64 / n as f64;
        assert!((got - expect).abs() < 0.02, "got {got}, expect {expect}");
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = ZipfGen::new(10_000, 0.99);
        let mut rng = rng_for(9, 1);
        let mut counts = vec![0u64; 16];
        for _ in 0..100_000 {
            let r = z.next_rank(&mut rng);
            if (r as usize) < counts.len() {
                counts[r as usize] += 1;
            }
        }
        for w in counts.windows(2) {
            // Monotone up to noise; allow slack on the tail.
            assert!(w[0] as f64 > w[1] as f64 * 0.7, "not monotone: {counts:?}");
        }
    }

    #[test]
    fn scrambled_keys_stay_in_range_and_spread() {
        let z = ZipfGen::new(1_000, 0.9);
        let mut rng = rng_for(11, 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let k = z.next_scrambled(&mut rng);
            assert!(k < 1_000);
            seen.insert(k);
        }
        assert!(seen.len() > 300, "scrambling too clustered: {}", seen.len());
        // Hot keys are NOT the numerically smallest.
        assert_ne!(z.key_of_rank(0), 0);
    }

    #[test]
    fn uniform_covers_keyspace() {
        let d = KeyDist::uniform(64);
        let mut rng = rng_for(3, 3);
        let mut counts = vec![0u64; 64];
        for _ in 0..64_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform skewed: {counts:?}");
        }
        assert!(!d.is_skewed());
        assert!(d.hottest_keys(5).is_empty());
    }

    #[test]
    fn zipf_theta_zero_degrades_to_uniform() {
        let d = KeyDist::zipf(100, 0.0);
        assert!(!d.is_skewed());
    }

    #[test]
    fn deterministic_streams() {
        let z = ZipfGen::new(1_000, 0.99);
        let a: Vec<u64> = {
            let mut rng = rng_for(42, 0);
            (0..100).map(|_| z.next_scrambled(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = rng_for(42, 0);
            (0..100).map(|_| z.next_scrambled(&mut rng)).collect()
        };
        let c: Vec<u64> = {
            let mut rng = rng_for(42, 1);
            (0..100).map(|_| z.next_scrambled(&mut rng)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hottest_keys_match_rank_mapping() {
        let d = KeyDist::zipf(10_000, 0.99);
        let hot = d.hottest_keys(3);
        if let KeyDist::Zipf(z) = &d {
            assert_eq!(hot[0], z.key_of_rank(0));
        } else {
            panic!("expected zipf");
        }
    }
}
