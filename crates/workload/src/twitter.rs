//! Twitter production-cache workloads (Table 1, following Yang et al. \[65\]).
//!
//! The paper selects three representative clusters and characterizes each by
//! its put ratio, average value size and zipf α; the traces themselves are
//! proprietary, so this module synthesizes streams with exactly those
//! parameters (DESIGN.md substitution table).

use crate::rng::SmallRng;

use crate::ycsb::Op;
use crate::zipf::{rng_for, KeyDist};
use crate::Workload;

/// The three clusters of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwitterCluster {
    /// Cluster-12: skewed and write-intensive.
    Cluster12,
    /// Cluster-19: skewed and read-intensive.
    Cluster19,
    /// Cluster-31: write-dominant and uniform.
    Cluster31,
}

impl TwitterCluster {
    /// (put ratio, average value size in bytes, zipf α) from Table 1.
    pub fn params(self) -> (f64, usize, f64) {
        match self {
            TwitterCluster::Cluster12 => (0.80, 1030, 0.30),
            TwitterCluster::Cluster19 => (0.25, 101, 0.74),
            TwitterCluster::Cluster31 => (0.94, 15, 0.0),
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            TwitterCluster::Cluster12 => "Cluster-12",
            TwitterCluster::Cluster19 => "Cluster-19",
            TwitterCluster::Cluster31 => "Cluster-31",
        }
    }

    /// All three clusters, in the paper's order.
    pub fn all() -> [TwitterCluster; 3] {
        [
            TwitterCluster::Cluster12,
            TwitterCluster::Cluster19,
            TwitterCluster::Cluster31,
        ]
    }
}

/// A synthesized Twitter-cluster workload.
#[derive(Clone, Debug)]
pub struct TwitterWorkload {
    cluster: TwitterCluster,
    put_ratio: f64,
    avg_value: usize,
    dist: KeyDist,
    rng: SmallRng,
}

impl TwitterWorkload {
    /// Creates a generator for `cluster` over `keyspace` keys.
    pub fn new(cluster: TwitterCluster, keyspace: u64, seed: u64, stream: u64) -> Self {
        let (put_ratio, avg_value, alpha) = cluster.params();
        TwitterWorkload {
            cluster,
            put_ratio,
            avg_value,
            dist: KeyDist::zipf(keyspace, alpha),
            rng: rng_for(seed ^ 0x7517, stream),
        }
    }

    /// The cluster being synthesized.
    pub fn cluster(&self) -> TwitterCluster {
        self.cluster
    }

    /// Draws a value size: exponential-ish around the cluster average
    /// (clamped to [1, 4×avg] so the mean holds without extreme outliers).
    fn sample_value_len(&mut self) -> usize {
        let u: f64 = self.rng.gen::<f64>().max(1e-9);
        let v = -(u.ln()) * self.avg_value as f64;
        (v as usize).clamp(1, self.avg_value * 4)
    }
}

impl Workload for TwitterWorkload {
    fn next_op(&mut self) -> Op {
        let key = self.dist.sample(&mut self.rng);
        if self.rng.gen::<f64>() < self.put_ratio {
            let value_len = self.sample_value_len();
            Op::Put { key, value_len }
        } else {
            Op::Get { key }
        }
    }

    fn keyspace(&self) -> u64 {
        self.dist.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_ratios_match_table1() {
        for cluster in TwitterCluster::all() {
            let (expect, _, _) = cluster.params();
            let mut w = TwitterWorkload::new(cluster, 10_000, 8, 0);
            let n = 50_000;
            let puts = (0..n).filter(|_| w.next_op().is_put()).count();
            let got = puts as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "{}: put ratio {got} vs {expect}",
                cluster.name()
            );
        }
    }

    #[test]
    fn average_value_sizes_match_table1() {
        for cluster in TwitterCluster::all() {
            let (_, avg, _) = cluster.params();
            let mut w = TwitterWorkload::new(cluster, 10_000, 9, 0);
            let mut sum = 0usize;
            let mut count = 0usize;
            for _ in 0..200_000 {
                if let Op::Put { value_len, .. } = w.next_op() {
                    sum += value_len;
                    count += 1;
                }
            }
            let got = sum as f64 / count as f64;
            let expect = avg as f64;
            assert!(
                (got - expect).abs() / expect < 0.12,
                "{}: avg value {got} vs {expect}",
                cluster.name()
            );
        }
    }

    #[test]
    fn cluster31_is_uniform() {
        let w = TwitterWorkload::new(TwitterCluster::Cluster31, 1_000, 10, 0);
        assert!(!w.dist.is_skewed());
        let w = TwitterWorkload::new(TwitterCluster::Cluster19, 1_000, 10, 0);
        assert!(w.dist.is_skewed());
    }
}
