//! Piecewise (time-varying) workloads for the auto-tuner experiments.
//!
//! Figure 14 changes the value size from 512 B to 8 B at t = 4 s and watches
//! the tuner detect and reconfigure. A [`DynamicWorkload`] strings together
//! phases, each a full workload generator, switched by the driver-supplied
//! elapsed time.

use crate::ycsb::{Mix, Op, YcsbWorkload};
use crate::zipf::KeyDist;
use crate::Workload;

/// One phase of a dynamic workload.
pub struct Phase {
    /// Phase start time in nanoseconds since measurement start.
    pub start_ns: u64,
    /// The generator active during this phase.
    pub workload: Box<dyn Workload + Send>,
}

/// A workload that switches generators at configured times.
pub struct DynamicWorkload {
    phases: Vec<Phase>,
    current: usize,
    now_ns: u64,
}

impl DynamicWorkload {
    /// Creates a dynamic workload from phases sorted by `start_ns`
    /// (the first must start at 0).
    ///
    /// # Panics
    ///
    /// Panics if phases are empty, unsorted, or do not start at 0.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert_eq!(phases[0].start_ns, 0, "first phase must start at t=0");
        for w in phases.windows(2) {
            assert!(w[0].start_ns < w[1].start_ns, "phases must be sorted");
        }
        DynamicWorkload {
            phases,
            current: 0,
            now_ns: 0,
        }
    }

    /// The paper's Figure 14 scenario: YCSB-A, value size 512 B until
    /// `switch_ns`, then 8 B.
    pub fn figure14(keyspace: u64, switch_ns: u64, seed: u64, stream: u64) -> Self {
        DynamicWorkload::new(vec![
            Phase {
                start_ns: 0,
                workload: Box::new(YcsbWorkload::new(
                    Mix::A,
                    KeyDist::zipf(keyspace, 0.99),
                    512,
                    50,
                    seed,
                    stream,
                )),
            },
            Phase {
                start_ns: switch_ns,
                workload: Box::new(YcsbWorkload::new(
                    Mix::A,
                    KeyDist::zipf(keyspace, 0.99),
                    8,
                    50,
                    seed,
                    stream + 1,
                )),
            },
        ])
    }

    /// Advances the workload clock (drivers call this with simulated time).
    pub fn set_time_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        while self.current + 1 < self.phases.len()
            && self.phases[self.current + 1].start_ns <= now_ns
        {
            self.current += 1;
        }
    }

    /// Index of the active phase.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl Workload for DynamicWorkload {
    fn next_op(&mut self) -> Op {
        self.phases[self.current].workload.next_op()
    }

    fn keyspace(&self) -> u64 {
        self.phases[self.current].workload.keyspace()
    }

    fn set_time_ns(&mut self, now_ns: u64) {
        DynamicWorkload::set_time_ns(self, now_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_at_configured_time() {
        let mut w = DynamicWorkload::figure14(1_000, 4_000_000_000, 11, 0);
        assert_eq!(w.current_phase(), 0);
        // Before the switch: 512-byte puts.
        for _ in 0..100 {
            if let Op::Put { value_len, .. } = w.next_op() {
                assert_eq!(value_len, 512);
            }
        }
        w.set_time_ns(3_999_999_999);
        assert_eq!(w.current_phase(), 0);
        w.set_time_ns(4_000_000_000);
        assert_eq!(w.current_phase(), 1);
        for _ in 0..100 {
            if let Op::Put { value_len, .. } = w.next_op() {
                assert_eq!(value_len, 8);
            }
        }
    }

    #[test]
    #[should_panic(expected = "first phase must start at t=0")]
    fn rejects_nonzero_start() {
        DynamicWorkload::new(vec![Phase {
            start_ns: 5,
            workload: Box::new(YcsbWorkload::new(Mix::C, KeyDist::uniform(10), 8, 50, 0, 0)),
        }]);
    }

    #[test]
    fn time_is_monotone_across_phase_skips() {
        let mut w = DynamicWorkload::figure14(100, 1_000, 12, 0);
        w.set_time_ns(10_000); // jump straight past the switch
        assert_eq!(w.current_phase(), 1);
    }
}
