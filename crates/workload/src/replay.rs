//! Record/replay of operation streams.
//!
//! The paper's §2.2.1 motivation experiment isolates the benefit of stage
//! separation by *deterministic replay*: instead of forwarding requests
//! between stages, the second stage regenerates the exact same request
//! sequence. This module provides that tool for any workload: record a
//! stream once, then hand identical copies to as many consumers as needed.

use crate::ycsb::Op;
use crate::Workload;

/// Records the first `n` operations of `inner`, producing a replayable tape.
pub fn record(inner: &mut dyn Workload, n: usize) -> Tape {
    Tape {
        keyspace: inner.keyspace(),
        ops: (0..n).map(|_| inner.next_op()).collect(),
    }
}

/// A recorded operation stream.
#[derive(Clone, Debug)]
pub struct Tape {
    keyspace: u64,
    ops: Vec<Op>,
}

impl Tape {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Creates a replaying workload over this tape (cycling at the end).
    pub fn replayer(&self) -> ReplayWorkload {
        ReplayWorkload {
            tape: self.clone(),
            pos: 0,
            laps: 0,
        }
    }
}

/// Replays a [`Tape`], cycling when it reaches the end.
#[derive(Clone, Debug)]
pub struct ReplayWorkload {
    tape: Tape,
    pos: usize,
    laps: u64,
}

impl ReplayWorkload {
    /// How many times the tape has wrapped.
    pub fn laps(&self) -> u64 {
        self.laps
    }
}

impl Workload for ReplayWorkload {
    fn next_op(&mut self) -> Op {
        let op = self.tape.ops[self.pos].clone();
        self.pos += 1;
        if self.pos == self.tape.ops.len() {
            self.pos = 0;
            self.laps += 1;
        }
        op
    }

    fn keyspace(&self) -> u64 {
        self.tape.keyspace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{Mix, YcsbWorkload};
    use crate::zipf::KeyDist;

    #[test]
    fn replay_is_bit_identical() {
        let mut src = YcsbWorkload::new(Mix::A, KeyDist::zipf(1_000, 0.99), 64, 50, 7, 0);
        let tape = record(&mut src, 500);
        assert_eq!(tape.len(), 500);
        let mut a = tape.replayer();
        let mut b = tape.replayer();
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert_eq!(a.laps(), 1);
    }

    #[test]
    fn replay_cycles() {
        let mut src = YcsbWorkload::new(Mix::C, KeyDist::uniform(10), 8, 50, 1, 0);
        let tape = record(&mut src, 3);
        let mut r = tape.replayer();
        let first: Vec<Op> = (0..3).map(|_| r.next_op()).collect();
        let second: Vec<Op> = (0..3).map(|_| r.next_op()).collect();
        assert_eq!(first, second);
        assert_eq!(r.laps(), 2);
        assert_eq!(r.keyspace(), 10);
    }

    #[test]
    fn two_replayers_are_independent() {
        let mut src = YcsbWorkload::new(Mix::B, KeyDist::zipf(100, 0.9), 16, 50, 2, 0);
        let tape = record(&mut src, 10);
        let mut a = tape.replayer();
        let _ = a.next_op();
        let mut b = tape.replayer();
        // `b` starts at the beginning regardless of `a`'s progress.
        assert_eq!(b.next_op(), tape.ops()[0]);
    }
}
