//! Golden-file regression test for the `stats_json` schema.
//!
//! The JSON sidecar is the machine-readable contract consumed by plotting
//! and CI tooling; accidentally dropping or renaming a key (including the
//! fault/robustness counters added with the fault-injection subsystem) must
//! fail loudly. The golden file records every key, in document order.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test stats_schema
//! ```

use utps::prelude::*;
use utps::sim::time::MICROS;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/stats_schema.txt");

fn schema_cfg() -> RunConfig {
    RunConfig {
        index: IndexKind::Tree,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed: 42,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        ..RunConfig::default()
    }
}

/// Every `"key":` in document order. String *values* are skipped because a
/// closing quote followed by anything but `:` is not a key.
fn keys_of(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            let mut k = j + 1;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.push(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[test]
fn stats_json_schema_matches_golden() {
    use utps::core::experiment::{run_utps, stats_json};
    let r = run_utps(&schema_cfg());
    let got = keys_of(&stats_json(&r)).join("\n") + "\n";

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).expect("cannot write golden file");
        return;
    }

    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "stats_json schema changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test stats_schema"
    );
}

#[test]
fn fault_counters_are_pinned_in_schema() {
    // The fault counters must be present (zero-valued) even on a fault-free
    // run, so dashboards never see a shifting schema.
    use utps::core::experiment::{run_utps, stats_json};
    let json = stats_json(&run_utps(&schema_cfg()));
    for key in [
        "fault.rx_drop",
        "fault.rx_dup",
        "fault.rx_delay",
        "fault.stall_defer",
        "crmr.corrupt",
        "crmr.lease_reclaim",
        "client.retransmit",
        "client.dup_resp",
        "client.failed",
        "server.dup_suppressed",
        "tuner.frozen_windows",
        "issued",
        "completed_total",
        "retransmits",
        "dup_resps",
        "failed",
    ] {
        assert!(
            json.contains(&format!("\"{key}\":")),
            "stats JSON lost pinned key {key}"
        );
    }
}

#[test]
fn faulty_and_clean_runs_share_one_schema() {
    // Injecting faults changes values, never the key set: a dashboard
    // pointed at a chaos run needs no special cases.
    use utps::core::experiment::{run_utps, stats_json};
    let clean = keys_of(&stats_json(&run_utps(&schema_cfg())));
    let faulty_cfg = RunConfig {
        faults: FaultConfig {
            drop_prob: 0.01,
            dup_prob: 0.005,
            ..FaultConfig::default()
        },
        ..schema_cfg()
    };
    let faulty = keys_of(&stats_json(&run_utps(&faulty_cfg)));
    assert_eq!(clean, faulty, "fault injection changed the stats schema");
}
