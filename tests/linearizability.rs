//! Linearizability matrix: the oracle over every request/response system,
//! with the schedule explorer armed.
//!
//! Every cell runs a system with history recording, seeded schedule
//! exploration and the oracle on, across three run seeds and two fault
//! plans (fault-free, and the acceptance plan: 1% receive drops plus a
//! 50 µs core stall). The oracle must find a linearization of the client-
//! observed history in every cell — a failure here is a real consistency
//! bug, and the failing run's `schedule_trace` is the replayable schedule
//! (see EXPERIMENTS.md for the reproduce/minimize workflow).
//!
//! Seeds are overridable for deeper local soaks:
//!
//! ```text
//! EXPLORE_SEEDS=1,2,3,...,64 cargo test --release --test linearizability
//! ```

use utps::prelude::*;
use utps::sim::time::MICROS;
use utps_core::experiment::stats_json;

fn explore_seeds() -> Vec<u64> {
    std::env::var("EXPLORE_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![42, 7, 1234])
}

fn lin_cfg(index: IndexKind, seed: u64, faults: FaultConfig) -> RunConfig {
    RunConfig {
        index,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        faults,
        record_history: true,
        oracle: true,
        schedule: ScheduleMode::Explore(ScheduleConfig::explore(seed)),
        ..RunConfig::default()
    }
}

/// The chaos suite's acceptance plan: 1% receive drops plus one 50 µs stall
/// of an MR core.
fn acceptance_faults() -> FaultConfig {
    FaultConfig {
        drop_prob: 0.01,
        stalls: vec![StallWindow {
            core: 4,
            at_ps: 900 * MICROS,
            dur_ps: 50 * MICROS,
        }],
        ..FaultConfig::default()
    }
}

fn check_system(label: &str, system: SystemKind, index: IndexKind) {
    for seed in explore_seeds() {
        for (plan, faults) in [
            ("clean", FaultConfig::default()),
            ("acceptance", acceptance_faults()),
        ] {
            let cfg = lin_cfg(index, seed, faults);
            let r = run(system, &cfg);
            assert!(r.completed > 0, "{label}/{seed}/{plan}: nothing completed");
            assert!(
                r.history_digest.is_some(),
                "{label}/{seed}/{plan}: no history recorded"
            );
            let rep = r
                .oracle
                .as_ref()
                .expect("oracle was configured on but produced no report");
            assert!(
                rep.ok(),
                "{label}/{seed}/{plan}: history is NOT linearizable.\n\
                 schedule trace (replay with ScheduleMode::Replay): {:?}\n\
                 violations: {:#?}",
                r.schedule_trace,
                rep.violations
            );
            // The oracle must actually have seen the run, not an empty
            // history.
            assert!(
                rep.point_ops as u64 >= r.completed,
                "{label}/{seed}/{plan}: oracle saw {} point ops for {} \
                 completions",
                rep.point_ops,
                r.completed
            );
        }
    }
}

#[test]
fn utps_h_is_linearizable_under_exploration() {
    check_system("utps_h", SystemKind::Utps, IndexKind::Hash);
}

#[test]
fn utps_t_is_linearizable_under_exploration() {
    check_system("utps_t", SystemKind::Utps, IndexKind::Tree);
}

#[test]
fn basekv_is_linearizable_under_exploration() {
    check_system("basekv", SystemKind::BaseKv, IndexKind::Tree);
}

#[test]
fn erpckv_is_linearizable_under_exploration() {
    check_system("erpckv", SystemKind::ErpcKv, IndexKind::Tree);
}

#[test]
fn utps_t_scans_are_checked_under_concurrent_writes() {
    // YCSB-E on the tree index: 95% range scans racing 5% inserts/updates.
    // The oracle's scan pass must see a substantial scan population and
    // find no phantom or dropped keys.
    let cfg = RunConfig {
        workload: WorkloadSpec::Ycsb {
            mix: Mix::E,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        ..lin_cfg(IndexKind::Tree, 42, FaultConfig::default())
    };
    let r = run(SystemKind::Utps, &cfg);
    let rep = r.oracle.as_ref().unwrap();
    assert!(rep.ok(), "scan violations: {:#?}", rep.violations);
    assert!(rep.scans > 100, "only {} scans checked", rep.scans);
}

#[test]
fn churn_mix_with_deletes_is_linearizable() {
    // The CHURN mix exercises the full API including deletes, on both
    // store-backed systems that serve them.
    for (label, system) in [("utps_t", SystemKind::Utps), ("basekv", SystemKind::BaseKv)] {
        let cfg = RunConfig {
            workload: WorkloadSpec::Ycsb {
                mix: Mix::CHURN,
                theta: 0.99,
                value_len: 64,
                scan_len: 20,
            },
            ..lin_cfg(IndexKind::Tree, 7, FaultConfig::default())
        };
        let r = run(system, &cfg);
        let rep = r.oracle.as_ref().unwrap();
        assert!(rep.ok(), "{label}: {:#?}", rep.violations);
    }
}

#[test]
fn replay_reproduces_an_exploration_run_byte_for_byte() {
    use utps::core::experiment::run_utps;
    let cfg = lin_cfg(IndexKind::Tree, 42, FaultConfig::default());
    let a = run_utps(&cfg);
    assert!(
        !a.schedule_trace.is_empty(),
        "exploration injected no stalls — mean_gap too large for this run?"
    );
    let replay_cfg = RunConfig {
        schedule: ScheduleMode::Replay(a.schedule_trace.clone()),
        ..cfg
    };
    let b = run_utps(&replay_cfg);
    assert_eq!(
        a.history_digest, b.history_digest,
        "replay produced a different op history than the exploration run"
    );
    assert_eq!(
        stats_json(&a),
        stats_json(&b),
        "replay diverged from the exploration run"
    );
    assert_eq!(
        a.schedule_trace, b.schedule_trace,
        "replay did not apply the exact recorded perturbations"
    );
}

#[test]
fn different_exploration_seeds_are_different_interleavings() {
    use utps::core::experiment::run_utps;
    let base = lin_cfg(IndexKind::Tree, 42, FaultConfig::default());
    let a = run_utps(&RunConfig {
        schedule: ScheduleMode::Explore(ScheduleConfig::explore(1)),
        ..base.clone()
    });
    let b = run_utps(&RunConfig {
        schedule: ScheduleMode::Explore(ScheduleConfig::explore(2)),
        ..base
    });
    assert_ne!(
        a.schedule_trace, b.schedule_trace,
        "two exploration seeds produced the same perturbations"
    );
    assert_ne!(
        a.history_digest, b.history_digest,
        "two exploration seeds produced identical interleavings"
    );
    // Both still linearizable, of course.
    assert!(a.oracle.as_ref().unwrap().ok());
    assert!(b.oracle.as_ref().unwrap().ok());
}

#[test]
fn recording_and_oracle_are_byte_transparent() {
    // Turning on history recording + the oracle must not change the
    // simulation at all: no charged time, no randomness, same stats.
    use utps::core::experiment::run_utps;
    let bare = RunConfig {
        record_history: false,
        oracle: false,
        schedule: ScheduleMode::Off,
        ..lin_cfg(IndexKind::Hash, 7, FaultConfig::default())
    };
    let instrumented = RunConfig {
        record_history: true,
        oracle: true,
        schedule: ScheduleMode::Off,
        ..bare.clone()
    };
    let a = run_utps(&bare);
    let b = run_utps(&instrumented);
    assert_eq!(
        stats_json(&a),
        stats_json(&b),
        "history recording perturbed the simulation"
    );
    assert!(a.history_digest.is_none() && a.schedule_trace.is_empty());
    assert!(b.oracle.as_ref().unwrap().ok());
}
