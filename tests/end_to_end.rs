//! Cross-crate integration tests: every system, end to end, through the
//! public facade.

use utps::prelude::*;
use utps::sim::time::MICROS;

fn quick(index: IndexKind, workload: WorkloadSpec) -> RunConfig {
    RunConfig {
        index,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_500 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        workload,
        ..RunConfig::default()
    }
}

fn ycsb(mix: Mix, theta: f64, value_len: usize) -> WorkloadSpec {
    WorkloadSpec::Ycsb {
        mix,
        theta,
        value_len,
        scan_len: 20,
    }
}

#[test]
fn every_system_serves_requests() {
    for (system, index) in [
        (SystemKind::Utps, IndexKind::Tree),
        (SystemKind::Utps, IndexKind::Hash),
        (SystemKind::BaseKv, IndexKind::Tree),
        (SystemKind::BaseKv, IndexKind::Hash),
        (SystemKind::ErpcKv, IndexKind::Tree),
        (SystemKind::ErpcKv, IndexKind::Hash),
        (SystemKind::Sherman, IndexKind::Tree),
        (SystemKind::RaceHash, IndexKind::Hash),
    ] {
        let r = run(system, &quick(index, ycsb(Mix::A, 0.99, 64)));
        assert!(
            r.completed > 100,
            "{} ({index:?}): only {} ops",
            system.name(),
            r.completed
        );
        assert_eq!(r.not_found, 0, "{}: missing keys", system.name());
        assert!(
            r.p50_ns >= 1_500,
            "{}: p50 below physical RTT",
            system.name()
        );
        assert!(r.p99_ns >= r.p50_ns, "{}: p99 < p50", system.name());
    }
}

#[test]
fn data_integrity_under_mixed_load() {
    // After a run with puts, every key must still resolve and values must
    // be one of the client fill bytes or the populate filler.
    use utps::core::experiment::run_utps_with_world;
    let cfg = quick(IndexKind::Tree, ycsb(Mix::A, 0.9, 32));
    let (r, world) = run_utps_with_world(&cfg);
    assert!(r.completed > 100);
    let mut checked = 0;
    for key in (0..cfg.keys).step_by(97) {
        let v = world.store.get_native(key).expect("populated key vanished");
        assert!(!v.is_empty());
        let b = v[0];
        assert!(
            b == 0xab || (0x40..0x80).contains(&b),
            "key {key} has unexpected fill byte {b:#x}"
        );
        assert!(v.iter().all(|&x| x == b), "torn value at key {key}");
        checked += 1;
    }
    assert!(checked > 100);
}

#[test]
fn scans_return_expected_counts() {
    let r = run(
        SystemKind::Utps,
        &quick(IndexKind::Tree, ycsb(Mix::SCAN_ONLY, 0.99, 8)),
    );
    assert!(r.completed > 50, "only {} scans", r.completed);
}

#[test]
fn deterministic_same_seed_identical_snapshots() {
    // Every cache-charged address is a fixed virtual address, so two
    // same-seed runs must agree bit for bit — including every stage-level
    // counter and histogram in the metrics snapshot.
    use utps::core::experiment::{run_utps, stats_json};
    let cfg = quick(IndexKind::Hash, ycsb(Mix::C, 0.99, 8));
    let a = run_utps(&cfg);
    let b = run_utps(&cfg);
    assert_eq!(a.completed, b.completed, "same-seed op counts diverged");
    assert_eq!(
        stats_json(&a),
        stats_json(&b),
        "same-seed metrics snapshots are not byte-identical"
    );
}

#[test]
fn different_seeds_differ() {
    let cfg = quick(IndexKind::Hash, ycsb(Mix::C, 0.99, 8));
    let a = run(SystemKind::Utps, &cfg);
    let b = run(SystemKind::Utps, &RunConfig { seed: 777, ..cfg });
    assert!(a.completed != b.completed, "seed had no effect");
}

#[test]
fn reconfiguration_loses_no_requests() {
    use utps::core::tuner::{TunerMode, TunerParams};
    let cfg = RunConfig {
        tuner: TunerMode::Auto,
        tuner_params: TunerParams {
            window: 200 * MICROS,
            settle: 100 * MICROS,
            trigger: 0.0, // hair trigger: search immediately
            trigger_windows: 1,
            cache_step: 1_000,
            cache_max: 1_000,
        },
        duration: 6_000 * MICROS,
        ..quick(IndexKind::Tree, ycsb(Mix::A, 0.99, 16))
    };
    let r = run(SystemKind::Utps, &cfg);
    assert!(r.reconfigs >= 1, "tuner never reassigned threads");
    assert!(r.completed > 500, "requests were lost during reassignment");
    assert_eq!(r.not_found, 0);
}

#[test]
fn stage_metrics_snapshot_contents() {
    // A tuned run's snapshot must expose the paper's per-stage picture: CR
    // hit-rate inputs, an MR traversal-latency histogram, CR-MR lane
    // occupancy, ring poll efficiency — plus a complete tuner trisection
    // trace in the decision log.
    use utps::core::experiment::{run_utps, stats_json};
    use utps::core::tuner::{TunerMode, TunerParams};
    let cfg = RunConfig {
        tuner: TunerMode::Auto,
        tuner_params: TunerParams {
            window: 200 * MICROS,
            settle: 100 * MICROS,
            trigger: 0.0, // hair trigger: search immediately
            trigger_windows: 1,
            cache_step: 1_000,
            cache_max: 1_000,
        },
        duration: 6_000 * MICROS,
        ..quick(IndexKind::Tree, ycsb(Mix::A, 0.99, 16))
    };
    let r = run_utps(&cfg);
    let snap = r.stage_metrics.as_ref().expect("no stage metrics snapshot");

    // CR hit rate is computable and sane.
    let hits = snap.counter("cr.hit").unwrap_or(0);
    let misses = snap.counter("cr.miss").unwrap_or(0);
    assert!(hits + misses > 0, "CR layer recorded no probes");
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!((0.0..=1.0).contains(&hit_rate));
    assert!(
        snap.counter("cr.response").unwrap_or(0) > 0,
        "no responses counted"
    );

    // MR traversal latency histogram is populated and ordered.
    let trav = snap
        .hist("mr.traversal_ns")
        .expect("no traversal histogram");
    assert!(trav.count > 0, "no traversals recorded");
    assert!(trav.min <= trav.p50 && trav.p50 <= trav.p99 && trav.p99 <= trav.max);

    // Lane occupancy high-water mark was tracked.
    assert!(
        snap.gauge("crmr.lane_hwm").unwrap_or(0) >= 1,
        "no lane occupancy recorded"
    );

    // Poll efficiency: hits cannot exceed polls.
    let polls = snap.counter("ring.polls").unwrap_or(0);
    let poll_hits = snap.counter("ring.poll_hits").unwrap_or(0);
    assert!(polls > 0 && poll_hits <= polls);

    // At least one complete trisection trace, ending in an accepted probe.
    assert!(!r.tuner_probes.is_empty(), "tuner left no decision log");
    assert!(
        r.tuner_probes.iter().any(|p| p.accepted),
        "no probe was ever accepted"
    );

    // The JSON sidecar carries all of it.
    let json = stats_json(&r);
    for needle in [
        "\"cr.hit\"",
        "\"mr.traversal_ns\"",
        "\"crmr.lane_hwm\"",
        "\"tuner_probes\":[{",
    ] {
        assert!(json.contains(needle), "stats JSON missing {needle}");
    }
}

#[test]
fn skew_helps_utps_more_than_rtc() {
    // Shape check: μTPS's relative position improves with skew (the hot
    // cache only helps when there is a hot set).
    let skew = quick(IndexKind::Tree, ycsb(Mix::C, 0.99, 64));
    let unif = RunConfig {
        cache_enabled: false,
        ..quick(IndexKind::Tree, ycsb(Mix::C, 0.0, 64))
    };
    let utps_s = run(SystemKind::Utps, &skew).mops;
    let base_s = run(SystemKind::BaseKv, &skew).mops;
    let utps_u = run(SystemKind::Utps, &unif).mops;
    let base_u = run(SystemKind::BaseKv, &unif).mops;
    let ratio_s = utps_s / base_s;
    let ratio_u = utps_u / base_u;
    assert!(
        ratio_s > ratio_u * 0.95,
        "skew ratio {ratio_s:.2} not better than uniform {ratio_u:.2}"
    );
}

#[test]
fn passive_kvs_pays_round_trips() {
    // RaceHash gets need 2 RTTs; actively served gets need ~1. Passive
    // median latency must be clearly higher.
    let cfg = quick(IndexKind::Hash, ycsb(Mix::C, 0.0, 64));
    let active = run(SystemKind::Utps, &cfg);
    let passive = run(SystemKind::RaceHash, &cfg);
    assert!(
        passive.p50_ns as f64 > active.p50_ns as f64 * 0.9,
        "passive p50 {} vs active {}",
        passive.p50_ns,
        active.p50_ns
    );
    assert!(passive.mops < active.mops, "passive should not win");
}

#[test]
fn churn_workload_with_deletes() {
    use utps::core::experiment::run_utps_with_world;
    // 30% put / 50% get / 20% delete over a small keyspace: keys churn in
    // and out; the hot cache must tombstone deleted entries rather than
    // serving stale items.
    let cfg = RunConfig {
        duration: 3_000 * MICROS,
        ..quick(IndexKind::Tree, ycsb(Mix::CHURN, 0.9, 16))
    };
    let (r, world) = run_utps_with_world(&cfg);
    assert!(r.completed > 500, "only {} ops", r.completed);
    // Deletes must actually have removed keys (some gets observe misses).
    assert!(r.not_found > 0, "churn produced no observable deletes");
    // Store stays consistent: every indexed key resolves to a live value.
    let mut live = 0;
    for key in 0..cfg.keys {
        if let Some(v) = world.store.get_native(key) {
            assert!(!v.is_empty());
            live += 1;
        }
    }
    assert!(live > 0 && live <= cfg.keys as usize);
    // Retired items await quiescent reclamation, never dangling.
    assert!(world.store.items.retired_len() > 0);
}

#[test]
fn dlb_queue_variant_works() {
    use utps::core::crmr::QueueKind;
    let cfg = RunConfig {
        queue_kind: QueueKind::Dlb,
        ..quick(IndexKind::Tree, ycsb(Mix::A, 0.99, 64))
    };
    let r = run(SystemKind::Utps, &cfg);
    assert!(r.completed > 100, "DLB variant served {} ops", r.completed);
    assert_eq!(r.not_found, 0);
}

#[test]
fn shared_mpmc_counterfactual_works_and_costs_more() {
    use utps::core::crmr::QueueKind;
    // §3.4's justification, measured: the single shared queue must still be
    // correct, but the all-to-all lanes should not lose to it.
    let lanes = run(
        SystemKind::Utps,
        &quick(IndexKind::Tree, ycsb(Mix::A, 0.99, 64)),
    );
    let shared = run(
        SystemKind::Utps,
        &RunConfig {
            queue_kind: QueueKind::SharedMpmc,
            ..quick(IndexKind::Tree, ycsb(Mix::A, 0.99, 64))
        },
    );
    assert!(shared.completed > 100, "shared-queue mode broke");
    assert_eq!(shared.not_found, 0);
    assert!(
        lanes.mops > shared.mops * 0.9,
        "all-to-all lanes ({:.2}M) should not lose to the shared queue ({:.2}M)",
        lanes.mops,
        shared.mops
    );
}
