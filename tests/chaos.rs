//! Chaos suite: every fault class against μTPS-H, μTPS-T and BaseKV.
//!
//! Invariants checked for every (fault class × system) cell:
//!
//! * **exactly-once** — no completed request is lost or duplicated: the
//!   ledger `issued == completed_total + failed + in-flight` holds, with
//!   in-flight bounded by the closed-loop window;
//! * **proportional degradation** — a ~1% fault rate may cost throughput,
//!   but never more than half of it;
//! * **determinism** — the same seed under the same fault plan is
//!   byte-identical, fates and all.
//!
//! The seed is overridable via `CHAOS_SEED` so CI can run a fixed matrix.

use utps::prelude::*;
use utps::sim::time::MICROS;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn chaos_cfg(index: IndexKind, faults: FaultConfig) -> RunConfig {
    RunConfig {
        index,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed: chaos_seed(),
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        faults,
        ..RunConfig::default()
    }
}

/// The fault classes of the plan, each exercising one injection point.
fn fault_classes() -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "drop",
            FaultConfig {
                drop_prob: 0.01,
                ..FaultConfig::default()
            },
        ),
        (
            "dup",
            FaultConfig {
                dup_prob: 0.01,
                ..FaultConfig::default()
            },
        ),
        (
            "delay",
            FaultConfig {
                delay_prob: 0.02,
                delay_ps: 20 * MICROS,
                ..FaultConfig::default()
            },
        ),
        (
            "stall",
            FaultConfig {
                stalls: vec![StallWindow {
                    core: 3, // an MR core for μTPS (n_cr = 2), any worker for BaseKV
                    at_ps: 900 * MICROS,
                    dur_ps: 50 * MICROS,
                }],
                ..FaultConfig::default()
            },
        ),
        (
            "corrupt",
            FaultConfig {
                corrupt_prob: 0.05, // CR-MR lane checks; no-op for BaseKV
                ..FaultConfig::default()
            },
        ),
    ]
}

/// No completed request lost, none completed twice: everything offered is
/// accounted for as completed, failed, or still in the closed-loop window.
fn assert_exactly_once(tag: &str, r: &RunResult, cfg: &RunConfig) {
    let resolved = r.completed_total + r.failed;
    assert!(
        resolved <= r.issued,
        "{tag}: resolved {resolved} > issued {}",
        r.issued
    );
    let in_flight = r.issued - resolved;
    let window = (cfg.clients * cfg.pipeline) as u64;
    assert!(
        in_flight <= window,
        "{tag}: {in_flight} requests vanished (window is {window})"
    );
    assert!(r.completed > 0, "{tag}: no requests completed");
}

#[test]
fn every_fault_class_preserves_exactly_once() {
    for (system, index) in [
        (SystemKind::Utps, IndexKind::Hash), // μTPS-H
        (SystemKind::Utps, IndexKind::Tree), // μTPS-T
        (SystemKind::BaseKv, IndexKind::Tree),
    ] {
        let clean = run(system, &chaos_cfg(index, FaultConfig::default()));
        for (class, faults) in fault_classes() {
            let tag = format!("{}/{index:?}/{class}", system.name());
            let cfg = chaos_cfg(index, faults);
            let r = run(system, &cfg);
            assert_exactly_once(&tag, &r, &cfg);
            // Proportional degradation: ~1% faults must not halve throughput.
            assert!(
                r.mops >= 0.5 * clean.mops,
                "{tag}: {:.2} Mops vs clean {:.2} Mops",
                r.mops,
                clean.mops
            );
        }
    }
}

#[test]
fn injected_faults_are_observable_in_counters() {
    // Each class must actually fire and show up in the metrics snapshot.
    for (class, faults, counter) in [
        (
            "drop",
            FaultConfig {
                drop_prob: 0.01,
                ..FaultConfig::default()
            },
            "fault.rx_drop",
        ),
        (
            "dup",
            FaultConfig {
                dup_prob: 0.01,
                ..FaultConfig::default()
            },
            "fault.rx_dup",
        ),
        (
            "delay",
            FaultConfig {
                delay_prob: 0.02,
                delay_ps: 20 * MICROS,
                ..FaultConfig::default()
            },
            "fault.rx_delay",
        ),
        (
            "stall",
            FaultConfig {
                stalls: vec![StallWindow {
                    core: 3,
                    at_ps: 900 * MICROS,
                    dur_ps: 50 * MICROS,
                }],
                ..FaultConfig::default()
            },
            "fault.stall_defer",
        ),
        (
            "corrupt",
            FaultConfig {
                corrupt_prob: 0.05,
                ..FaultConfig::default()
            },
            "crmr.corrupt",
        ),
    ] {
        let r = run(SystemKind::Utps, &chaos_cfg(IndexKind::Tree, faults));
        let snap = r.stage_metrics.as_ref().expect("no snapshot");
        assert!(
            snap.counter(counter).unwrap_or(0) > 0,
            "{class}: {counter} never fired"
        );
    }
}

#[test]
fn same_seed_fault_runs_are_byte_identical() {
    use utps::core::experiment::{run_utps, stats_json};
    let faults = FaultConfig {
        drop_prob: 0.01,
        dup_prob: 0.005,
        delay_prob: 0.01,
        delay_ps: 20 * MICROS,
        ..FaultConfig::default()
    };
    let cfg = chaos_cfg(IndexKind::Hash, faults);
    let a = run_utps(&cfg);
    let b = run_utps(&cfg);
    assert_eq!(
        stats_json(&a),
        stats_json(&b),
        "same-seed fault runs diverged"
    );
}

#[test]
fn zero_fault_plan_is_byte_transparent() {
    // A FaultPlan with zero probabilities and no stalls — even with a
    // nonzero plan seed and the retry machinery armed — must reproduce the
    // plain baseline run byte for byte: the hooks draw no randomness and
    // charge no time unless a fault actually fires.
    use utps::core::experiment::{run_utps, stats_json};
    let base = chaos_cfg(IndexKind::Hash, FaultConfig::default());

    let plain = run_utps(&RunConfig {
        retry: RetryConfig::disabled(),
        ..base.clone()
    });
    let armed = run_utps(&base);
    let seeded_zero_plan = run_utps(&RunConfig {
        faults: FaultConfig {
            seed: 999,
            ..FaultConfig::default()
        },
        ..base.clone()
    });

    assert_eq!(
        stats_json(&plain),
        stats_json(&armed),
        "arming retries on a fault-free run changed the simulation"
    );
    assert_eq!(
        stats_json(&armed),
        stats_json(&seeded_zero_plan),
        "a zero plan's seed leaked into the simulation"
    );
}

#[test]
fn acceptance_plan_drop_plus_stall() {
    // The issue's acceptance plan: 1% receive drops plus one 50 µs MR-core
    // stall. μTPS must complete every offered request exactly once, with a
    // finite p99 reported in stats_json.
    use utps::core::experiment::{run_utps, stats_json};
    let faults = FaultConfig {
        drop_prob: 0.01,
        stalls: vec![StallWindow {
            core: 4,
            at_ps: 900 * MICROS,
            dur_ps: 50 * MICROS,
        }],
        ..FaultConfig::default()
    };
    let cfg = chaos_cfg(IndexKind::Tree, faults);
    let r = run_utps(&cfg);

    assert_exactly_once("acceptance", &r, &cfg);
    assert_eq!(r.failed, 0, "retry budget exhausted under a 1% drop plan");
    assert!(r.p99_ns > 0 && r.p99_ns < u64::MAX, "p99 not finite");
    let json = stats_json(&r);
    for needle in [
        format!("\"p99_ns\":{}", r.p99_ns),
        "\"fault.rx_drop\"".to_string(),
        "\"fault.stall_defer\"".to_string(),
        "\"retransmits\"".to_string(),
    ] {
        assert!(json.contains(&needle), "stats JSON missing {needle}");
    }
    let snap = r.stage_metrics.as_ref().unwrap();
    assert!(snap.counter("fault.rx_drop").unwrap_or(0) > 0);
    assert!(r.retransmits > 0, "drops must force retransmissions");
}

#[test]
fn lease_reclaims_stalled_worker_batch() {
    // A long MR-core stall with descriptor leases armed: the CR must revoke
    // the stalled lane's batch, re-spread it, and nothing may double-execute.
    use utps::core::experiment::run_utps;
    let faults = FaultConfig {
        stalls: vec![StallWindow {
            core: 3,
            at_ps: 800 * MICROS,
            dur_ps: 400 * MICROS,
        }],
        ..FaultConfig::default()
    };
    let cfg = RunConfig {
        lease_ps: 100 * MICROS,
        ..chaos_cfg(IndexKind::Tree, faults)
    };
    let r = run_utps(&cfg);
    assert_exactly_once("lease", &r, &cfg);
    let snap = r.stage_metrics.as_ref().unwrap();
    assert!(
        snap.counter("crmr.lease_reclaim").unwrap_or(0) >= 1,
        "stalled lane was never reclaimed"
    );
}

/// A 4-shard cluster with one live migration mid-measurement; `link`
/// carries the inter-machine fault plan for the migration transfer.
fn cluster_chaos_cfg(link: LinkConfig) -> ClusterConfig {
    ClusterConfig {
        // Slot 2 starts round-robin-owned by shard 2; moving it to shard 0
        // mid-measurement is a guaranteed live rebalance.
        migrations: vec![MigrationSpec {
            at_ps: 800 * MICROS,
            class: SizeClass::Small,
            slot: 2,
            to_shard: 0,
        }],
        link,
        ..ClusterConfig::new(chaos_cfg(IndexKind::Hash, FaultConfig::default()), 4)
    }
}

#[test]
fn cluster_link_faults_preserve_exactly_once() {
    // Every inter-machine link fault class against a 4-shard cluster with a
    // live rebalance: drops (chunk retransmitted), duplicates (idempotent
    // double install), delays, and all three at once. The exactly-once
    // ledger must balance and a faulty link may not halve throughput —
    // the migration moves data, not correctness or the fast path.
    let classes: Vec<(&str, LinkConfig)> = vec![
        (
            "link-drop",
            LinkConfig {
                drop_prob: 0.05,
                ..LinkConfig::default()
            },
        ),
        (
            "link-dup",
            LinkConfig {
                dup_prob: 0.05,
                ..LinkConfig::default()
            },
        ),
        (
            "link-delay",
            LinkConfig {
                delay_prob: 0.10,
                ..LinkConfig::default()
            },
        ),
        ("link-all", LinkConfig::chaos_default()),
    ];
    for system in [SystemKind::Utps, SystemKind::BaseKv] {
        let clean_cfg = cluster_chaos_cfg(LinkConfig::default());
        let clean = run_cluster(system, &clean_cfg);
        assert_exactly_once(
            &format!("{}/link-clean", system.name()),
            &clean,
            &clean_cfg.base,
        );
        for (class, link) in &classes {
            let tag = format!("{}/{class}", system.name());
            let cfg = cluster_chaos_cfg(link.clone());
            let r = run_cluster(system, &cfg);
            assert_exactly_once(&tag, &r, &cfg.base);
            let cl = r.cluster.as_ref().expect("cluster stats missing");
            assert_eq!(cl.migrations, 1, "{tag}: the rebalance never finished");
            assert!(cl.migrated_items > 0, "{tag}: rebalance moved nothing");
            assert!(
                r.mops >= 0.5 * clean.mops,
                "{tag}: {:.2} Mops vs clean {:.2} Mops",
                r.mops,
                clean.mops
            );
        }
    }
}

#[test]
fn crash_plus_device_fault_preserves_exactly_once() {
    // The crash+device-fault cell: receive drops/dups riding on top of a
    // mid-run power loss with the device's seeded torn-tail fault model.
    // The exactly-once ledger must balance on *both sides* of the crash —
    // requests in flight at the power loss are the only allowed gap, and
    // they stay pending ("may have executed") rather than vanishing into a
    // double execution, which the oracle over the combined history would
    // catch as a dedup violation.
    let faults = FaultConfig {
        drop_prob: 0.01,
        dup_prob: 0.005,
        ..FaultConfig::default()
    };
    for (label, runner) in [
        (
            "utps-h",
            run_utps_crash as fn(&RunConfig, u64) -> CrashReport,
        ),
        (
            "basekv",
            run_basekv_crash as fn(&RunConfig, u64) -> CrashReport,
        ),
    ] {
        let cfg = RunConfig {
            workers: 4,
            clients: 8,
            hot_capacity: 500,
            oracle: true,
            tier: Some(TierConfig {
                dram_items_max: 15_000,
                evict_batch: 256,
                compact_every_ps: 100 * MICROS,
                ..Default::default()
            }),
            ..chaos_cfg(IndexKind::Hash, faults.clone())
        };
        let rep = runner(&cfg, cfg.warmup + cfg.duration / 2);
        let window = (cfg.clients * cfg.pipeline) as u64;
        for (phase, issued, completed, failed) in [
            ("pre", rep.pre_issued, rep.pre_completed, rep.pre_failed),
            ("post", rep.post_issued, rep.post_completed, rep.post_failed),
        ] {
            let tag = format!("{label}/crash+device-fault/{phase}");
            let resolved = completed + failed;
            assert!(
                resolved <= issued,
                "{tag}: resolved {resolved} > issued {issued}"
            );
            assert!(
                issued - resolved <= window,
                "{tag}: {} requests vanished (window is {window})",
                issued - resolved
            );
            assert!(completed > 0, "{tag}: no requests completed");
        }
        assert!(
            rep.pending_at_crash as u64 <= window,
            "{label}: {} ops pending at the crash exceed the closed-loop \
             window {window}",
            rep.pending_at_crash
        );
        assert!(
            rep.acked_preserved,
            "{label}: durable-ack invariant violated"
        );
        assert!(
            rep.oracle.ok(),
            "{label}: combined history not linearizable: {:#?}",
            rep.oracle.violations
        );
    }
}

#[test]
fn tuner_freezes_under_fault_pressure() {
    // With faults active inside a window the tuner must hold its
    // configuration instead of chasing fault-skewed measurements.
    use utps::core::tuner::{TunerMode, TunerParams};
    let faults = FaultConfig {
        drop_prob: 0.02,
        ..FaultConfig::default()
    };
    let cfg = RunConfig {
        tuner: TunerMode::Auto,
        tuner_params: TunerParams {
            window: 200 * MICROS,
            settle: 100 * MICROS,
            trigger: 0.0, // hair trigger: any deviation would search
            trigger_windows: 1,
            cache_step: 1_000,
            cache_max: 1_000,
        },
        duration: 3_000 * MICROS,
        ..chaos_cfg(IndexKind::Tree, faults)
    };
    let r = run(SystemKind::Utps, &cfg);
    assert_exactly_once("tuner-freeze", &r, &cfg);
    let snap = r.stage_metrics.as_ref().unwrap();
    assert!(
        snap.counter("tuner.frozen_windows").unwrap_or(0) >= 1,
        "tuner never froze despite steady fault pressure"
    );
}
