//! Crash-recovery matrix: seeded power loss under the acceptance fault
//! plan, recovery from the surviving media image, and the linearizability
//! oracle over the *combined* pre-crash + post-recovery history.
//!
//! Every cell runs a tier-enabled system (μTPS-H and BaseKV) with the
//! schedule explorer and the acceptance faults armed, crashes it at a
//! seeded mid-run instant, truncates the device at its durable marks (torn
//! in-flight tails per the seeded fault model), replays the surviving WAL
//! over the newest decodable run, resumes a continued client fleet, and
//! hands the stitched history to the oracle. Ops in flight at the crash
//! stay pending — "may or may not have executed" — which is exactly their
//! semantics across a power loss; the oracle treats them as optional.
//!
//! Invariants per cell:
//!
//! * **durable-ack** — every mutation acked before the crash has a WAL
//!   record surviving the torn tail (the group-commit barrier's contract);
//! * **linearizable across the crash** — the combined history has a valid
//!   linearization against the initial fill;
//! * **progress** — both phases complete real work.
//!
//! Across the matrix at least one cell must observe a torn or truncated
//! tail (otherwise the fault model never bit), and the recovered run must
//! be byte-deterministic: same seed, same crash point → same combined
//! history digest.
//!
//! Seeds are overridable for deeper soaks:
//!
//! ```text
//! CRASH_SEEDS=1,2,3 cargo test --release --test crash_recovery
//! ```

use utps::prelude::*;
use utps::sim::time::MICROS;

fn crash_seeds() -> Vec<u64> {
    std::env::var("CRASH_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![42, 7, 1234])
}

/// The chaos suite's acceptance plan: 1% receive drops plus one 50 µs core
/// stall, landed early enough to straddle the first crash point.
fn acceptance_faults() -> FaultConfig {
    FaultConfig {
        drop_prob: 0.01,
        stalls: vec![StallWindow {
            core: 2,
            at_ps: 900 * MICROS,
            dur_ps: 50 * MICROS,
        }],
        ..FaultConfig::default()
    }
}

fn crash_cfg(seed: u64, faults: FaultConfig) -> RunConfig {
    RunConfig {
        keys: 20_000,
        workers: 4,
        n_cr: 2,
        clients: 8,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_500 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 500,
        seed,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        faults,
        oracle: true,
        schedule: ScheduleMode::Explore(ScheduleConfig::explore(seed)),
        tier: Some(TierConfig {
            dram_items_max: 15_000,
            evict_batch: 256,
            compact_every_ps: 100 * MICROS,
            ..Default::default()
        }),
        ..RunConfig::default()
    }
}

/// The two seeded crash points: one third and two thirds into the run —
/// the first lands amid warm cache + first compactions, the second amid
/// steady-state group commit under the stall's retransmit backlog.
fn crash_points(cfg: &RunConfig) -> [u64; 2] {
    [
        cfg.warmup + cfg.duration / 3,
        cfg.warmup + 2 * cfg.duration / 3,
    ]
}

fn check_cell(tag: &str, rep: &CrashReport) {
    assert!(
        rep.pre_completed > 100,
        "{tag}: pre-crash did little work ({})",
        rep.pre_completed
    );
    assert!(
        rep.post_completed > 100,
        "{tag}: recovery did little work ({})",
        rep.post_completed
    );
    assert!(
        rep.acked_preserved,
        "{tag}: durable-ack invariant violated — an acked mutation's WAL \
         record did not survive the crash ({} acked mutations)",
        rep.acked_mutations
    );
    assert!(rep.replayed > 0, "{tag}: recovery replayed no WAL records");
    assert!(rep.groups > 0, "{tag}: no commit groups survived");
    assert!(
        rep.oracle.ok(),
        "{tag}: combined pre-crash + post-recovery history is NOT \
         linearizable.\nviolations: {:#?}",
        rep.oracle.violations
    );
}

fn run_matrix(label: &str, runner: impl Fn(&RunConfig, u64) -> CrashReport) {
    let mut torn_anywhere = false;
    for seed in crash_seeds() {
        let cfg = crash_cfg(seed, acceptance_faults());
        for (i, crash_at) in crash_points(&cfg).into_iter().enumerate() {
            let tag = format!("{label}/seed{seed}/crash{i}");
            let rep = runner(&cfg, crash_at);
            check_cell(&tag, &rep);
            torn_anywhere |= rep.torn_segments > 0 || rep.wal_truncated;
        }
    }
    assert!(
        torn_anywhere,
        "{label}: no cell observed a torn or truncated tail — the device \
         fault model never engaged"
    );
}

#[test]
fn utps_crash_matrix_is_linearizable() {
    run_matrix("utps-h", run_utps_crash);
}

#[test]
fn basekv_crash_matrix_is_linearizable() {
    run_matrix("basekv", run_basekv_crash);
}

#[test]
fn same_seed_crash_recovery_is_byte_identical() {
    // Same seed, same crash point, same fault plan: the crash image, the
    // recovery, and the resumed run must all reproduce byte for byte —
    // the combined history digest covers every op of both phases.
    let cfg = crash_cfg(42, acceptance_faults());
    let crash_at = crash_points(&cfg)[0];
    for (label, runner) in [
        (
            "utps-h",
            run_utps_crash as fn(&RunConfig, u64) -> CrashReport,
        ),
        (
            "basekv",
            run_basekv_crash as fn(&RunConfig, u64) -> CrashReport,
        ),
    ] {
        let a = runner(&cfg, crash_at);
        let b = runner(&cfg, crash_at);
        assert_eq!(
            a.combined_digest, b.combined_digest,
            "{label}: same-seed crash recovery diverged"
        );
        assert_eq!(
            a.pre_completed, b.pre_completed,
            "{label}: phase-1 diverged"
        );
        assert_eq!(
            a.post_completed, b.post_completed,
            "{label}: phase-2 diverged"
        );
        assert_eq!(a.replayed, b.replayed, "{label}: recovery diverged");
    }
}
