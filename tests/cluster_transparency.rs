//! N=1 cluster transparency: a one-shard cluster with every cluster
//! feature off must be byte-identical to the single-machine runners.
//!
//! The cluster layer is a pure superset: with one machine, no size split,
//! no replication and no migrations, nothing cluster-shaped is installed —
//! no admission hooks, no controllers, no extra metrics — and the spawn
//! order and per-step charges of `ClusterClientProc` mirror `ClientProc`
//! exactly. These tests reuse the *existing* single-machine goldens
//! (`tests/golden/equiv_*.json`), so any divergence is a transparency
//! regression in the cluster crate, never a golden refresh.

use utps::prelude::*;
use utps::sim::time::MICROS;
use utps_core::experiment::stats_json;
use utps_index::IndexKind;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");

fn quick_cfg(index: IndexKind, seed: u64) -> RunConfig {
    RunConfig {
        index,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        ..RunConfig::default()
    }
}

fn check(label: &str, system: SystemKind, index: IndexKind) {
    for seed in [42u64, 7, 1234] {
        let cfg = ClusterConfig::new(quick_cfg(index, seed), 1);
        assert!(cfg.is_trivial(), "one-shard default config must be trivial");
        let got = stats_json(&run_cluster(system, &cfg)) + "\n";
        let want = std::fs::read_to_string(format!("{GOLDEN_DIR}/equiv_{label}_{seed}.json"))
            .expect("single-machine golden missing");
        assert_eq!(
            got, want,
            "{label} seed {seed}: a trivial one-shard cluster diverged from \
             the single-machine golden; the cluster layer is not transparent"
        );
    }
}

#[test]
fn utps_h_one_shard_cluster_is_transparent() {
    check("utps_h", SystemKind::Utps, IndexKind::Hash);
}

#[test]
fn utps_t_one_shard_cluster_is_transparent() {
    check("utps_t", SystemKind::Utps, IndexKind::Tree);
}

#[test]
fn basekv_one_shard_cluster_is_transparent() {
    check("basekv", SystemKind::BaseKv, IndexKind::Tree);
}
