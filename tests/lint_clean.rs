//! The whole workspace passes `utps-lint` — the static invariants hold.
//!
//! This is the in-tree twin of the CI `cargo run -p utps-lint -- --workspace`
//! gate, so `cargo test` alone catches a violation before it reaches CI. It
//! subsumes the old `hot_path_no_copy.rs` grep test: payload-copy patterns on
//! the hot path are now rule R3 (`payload-linearity`), which understands
//! tokens and allow directives instead of raw substrings.

use std::path::Path;
use std::time::Instant;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let started = Instant::now();
    let (ws, violations) = utps_lint::lint_root(root).expect("lint walk failed");
    let wall = started.elapsed();
    assert!(
        ws.files.len() > 80,
        "suspiciously few files scanned ({}); walk broken?",
        ws.files.len()
    );
    assert!(
        violations.is_empty(),
        "utps-lint violations:\n{}",
        violations
            .iter()
            .map(utps_lint::render_human)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The interprocedural pass (call graph + per-function dataflow) must
    // stay cheap enough to live in the default CI lint job. 5 s is ~20x the
    // observed cost on this tree — tripping it means something regressed
    // algorithmically, not that CI had a slow day.
    assert!(
        wall.as_secs_f64() < 5.0,
        "lint run took {:.2?}; the interprocedural analyses must stay under 5 s",
        wall
    );
}
