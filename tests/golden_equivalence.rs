//! Same-seed byte-identity goldens across the stage-engine refactor.
//!
//! The stage engine and arena-backed payloads are pure restructurings: no
//! charged cost, counter, ordering or RNG draw may change. These goldens
//! were generated from the pre-refactor runners; every post-refactor run
//! must reproduce the full `stats_json` document byte for byte, for all
//! four systems, on three seeds.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden_equivalence
//! ```

use utps::prelude::*;
use utps::sim::time::MICROS;
use utps_core::experiment::stats_json;
use utps_index::IndexKind;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");

fn quick_cfg(index: IndexKind, seed: u64) -> RunConfig {
    RunConfig {
        index,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        ..RunConfig::default()
    }
}

fn check(label: &str, system: SystemKind, index: IndexKind) {
    for seed in [42u64, 7, 1234] {
        let cfg = quick_cfg(index, seed);
        let got = stats_json(&run::run(system, &cfg)) + "\n";
        let path = format!("{GOLDEN_DIR}/equiv_{label}_{seed}.json");
        if std::env::var("UPDATE_GOLDEN").is_ok() {
            std::fs::write(&path, &got).expect("cannot write golden file");
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
        assert_eq!(
            got, want,
            "{label} seed {seed}: stats_json diverged from the pre-refactor \
             golden; the refactor changed simulated behavior"
        );
    }
}

#[test]
fn utps_h_matches_prerefactor_golden() {
    check("utps_h", SystemKind::Utps, IndexKind::Hash);
}

#[test]
fn utps_t_matches_prerefactor_golden() {
    check("utps_t", SystemKind::Utps, IndexKind::Tree);
}

#[test]
fn basekv_matches_prerefactor_golden() {
    check("basekv", SystemKind::BaseKv, IndexKind::Tree);
}

#[test]
fn erpckv_matches_prerefactor_golden() {
    check("erpckv", SystemKind::ErpcKv, IndexKind::Tree);
}
