//! Lint: the steady-state hot path must not copy payload bytes.
//!
//! Request/response bodies live in the NIC-buffer [`PayloadArena`]
//! (`utps_sim::arena`) and travel as `PayloadRef` handles; a body is written
//! once and *moved* (`take`) into KV storage or freed — never cloned per
//! hop. The only sanctioned deep copy is fault redelivery
//! (`PayloadArena::dup`), where a duplicated message genuinely occupies a
//! second NIC buffer.
//!
//! This test greps the CR/MR and baseline step code for the copy patterns
//! the refactor removed, so a regression shows up as a named source line.

use std::path::Path;

/// Files containing server-side steady-state step code.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/server.rs",
    "crates/core/src/store.rs",
    "crates/core/src/rpc.rs",
    "crates/core/src/client.rs",
    "crates/baselines/src/basekv.rs",
    "crates/baselines/src/erpckv.rs",
];

/// Byte-copy patterns forbidden on the hot path. `payloads.dup(` is the
/// fault-redelivery exemption and is allowed; everything here clones actual
/// payload bytes per hop.
const FORBIDDEN: &[&str] = &["value.clone()", "value().clone()", ".to_vec()"];

#[test]
fn no_payload_copies_on_hot_path() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenses = Vec::new();
    for file in HOT_PATH_FILES {
        let src = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        for (lineno, line) in src.lines().enumerate() {
            for pat in FORBIDDEN {
                if line.contains(pat) {
                    offenses.push(format!("{file}:{}: `{pat}` in {}", lineno + 1, line.trim()));
                }
            }
        }
    }
    assert!(
        offenses.is_empty(),
        "payload byte copies on the hot path (move the PayloadRef or use \
         PayloadArena::dup for fault redelivery):\n{}",
        offenses.join("\n")
    );
}
