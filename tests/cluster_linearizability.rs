//! Cluster linearizability: the Wing–Gong oracle over histories recorded
//! across *live rebalances*, with hot-key replication enabled, under the
//! acceptance fault plan, with the schedule explorer armed.
//!
//! This is the headline guarantee of the cluster layer: sharding, size
//! segregation, replica fan-out reads and mid-run ownership handoff are
//! all invisible to clients — every observed history still linearizes.
//! Each cell runs 2 small shards + 1 large shard with the 4 hottest
//! small-class keys replicated, one live slot migration mid-measurement
//! over a faulty link (drops, duplicates, delays), 1% client-fabric
//! receive drops and a 50 µs core stall, and seeded schedule exploration
//! perturbing every machine.

use utps::prelude::*;
use utps::sim::time::MICROS;
use utps_workload::zipf::KeyDist;

fn explore_seeds() -> Vec<u64> {
    std::env::var("EXPLORE_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![42, 7, 1234])
}

/// The chaos suite's acceptance plan: 1% receive drops plus one 50 µs stall
/// of an MR core (applied on every shard machine).
fn acceptance_faults() -> FaultConfig {
    FaultConfig {
        drop_prob: 0.01,
        stalls: vec![StallWindow {
            core: 4,
            at_ps: 900 * MICROS,
            dur_ps: 50 * MICROS,
        }],
        ..FaultConfig::default()
    }
}

fn cluster_cfg(index: IndexKind, seed: u64) -> ClusterConfig {
    let base = RunConfig {
        index,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        faults: acceptance_faults(),
        record_history: true,
        oracle: true,
        schedule: ScheduleMode::Explore(ScheduleConfig::explore(seed)),
        ..RunConfig::default()
    };
    let keys = base.keys;
    let large_keys = 500;
    // Replicate the 4 hottest small-class keys (the scrambled-zipfian hot
    // set; skip any that land in the large-class tail).
    let replicate_keys: Vec<u64> = KeyDist::zipf(keys, 0.99)
        .hottest_keys(8)
        .into_iter()
        .filter(|&k| k < keys - large_keys)
        .take(4)
        .collect();
    ClusterConfig {
        large_shards: 1,
        large_keys,
        replicate_keys,
        // Slot 3 starts round-robin-owned by small shard 1; handing it to
        // shard 0 mid-measurement is a guaranteed live rebalance.
        migrations: vec![MigrationSpec {
            at_ps: 800 * MICROS,
            class: SizeClass::Small,
            slot: 3,
            to_shard: 0,
        }],
        link: LinkConfig::chaos_default(),
        ..ClusterConfig::new(base, 2)
    }
}

fn check_system(label: &str, system: SystemKind, index: IndexKind) {
    for seed in explore_seeds() {
        let cfg = cluster_cfg(index, seed);
        let r = run_cluster(system, &cfg);
        assert!(r.completed > 0, "{label}/{seed}: nothing completed");
        let cl = r
            .cluster
            .as_ref()
            .expect("non-trivial cluster run must report cluster stats");
        assert_eq!(cl.migrations, 1, "{label}/{seed}: the rebalance never ran");
        assert!(
            cl.migrated_items > 0,
            "{label}/{seed}: rebalance moved no items"
        );
        assert!(
            cl.replica_reads > 0,
            "{label}/{seed}: no read was ever served from a replica"
        );
        assert!(
            cl.routed_large > 0,
            "{label}/{seed}: no request was routed to the large pool"
        );
        let rep = r
            .oracle
            .as_ref()
            .expect("oracle was configured on but produced no report");
        assert!(
            rep.ok(),
            "{label}/{seed}: history across a live rebalance is NOT \
             linearizable.\n\
             schedule trace (replay with ScheduleMode::Replay): {:?}\n\
             violations: {:#?}",
            r.schedule_trace,
            rep.violations
        );
        assert!(
            rep.point_ops as u64 >= r.completed,
            "{label}/{seed}: oracle saw {} point ops for {} completions",
            rep.point_ops,
            r.completed
        );
    }
}

#[test]
fn utps_h_cluster_is_linearizable_across_rebalances() {
    check_system("utps_h", SystemKind::Utps, IndexKind::Hash);
}

#[test]
fn basekv_cluster_is_linearizable_across_rebalances() {
    check_system("basekv", SystemKind::BaseKv, IndexKind::Tree);
}

#[test]
fn cluster_runs_are_deterministic() {
    // Same seed, same config → byte-identical stats including the cluster
    // section and the recorded schedule trace.
    use utps_core::experiment::stats_json;
    let a = run_cluster(SystemKind::Utps, &cluster_cfg(IndexKind::Hash, 42));
    let b = run_cluster(SystemKind::Utps, &cluster_cfg(IndexKind::Hash, 42));
    assert_eq!(stats_json(&a), stats_json(&b));
    assert_eq!(a.history_digest, b.history_digest);
    assert_eq!(a.schedule_trace, b.schedule_trace);
}
