//! Golden op-history digests: determinism anchors for the recorded history.
//!
//! Each cell runs a system with history recording on (oracle and schedule
//! exploration off) and compares the 64-bit FNV digest of the full
//! invoke/response history against a committed golden. Any change to
//! request ordering, retry behavior, or client-observed results shows up
//! here even when aggregate stats happen to match.
//!
//! One cell additionally asserts that recording is byte-transparent: the
//! `stats_json` of a recorded run must still match the *stats* golden
//! committed by `golden_equivalence` for the same cell.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test history_golden
//! ```

use std::fmt::Write as _;

use utps::prelude::*;
use utps::sim::time::MICROS;
use utps_core::experiment::stats_json;
use utps_index::IndexKind;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");

fn quick_cfg(index: IndexKind, seed: u64) -> RunConfig {
    RunConfig {
        index,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        record_history: true,
        ..RunConfig::default()
    }
}

#[test]
fn history_digests_match_goldens() {
    let cells: [(&str, SystemKind, IndexKind); 4] = [
        ("utps_h", SystemKind::Utps, IndexKind::Hash),
        ("utps_t", SystemKind::Utps, IndexKind::Tree),
        ("basekv", SystemKind::BaseKv, IndexKind::Tree),
        ("erpckv", SystemKind::ErpcKv, IndexKind::Tree),
    ];
    let mut got = String::new();
    for (label, system, index) in cells {
        for seed in [42u64, 7, 1234] {
            let r = run::run(system, &quick_cfg(index, seed));
            let digest = r.history_digest.expect("recording was on");
            writeln!(got, "{label} {seed} {digest:016x}").unwrap();
        }
    }
    let path = format!("{GOLDEN_DIR}/history_digest.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("cannot write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "history digests diverged from the committed goldens; the \
         client-observed op history changed"
    );
}

#[test]
fn recorded_run_still_matches_stats_golden() {
    // Recording must not perturb the simulation: a run with history on
    // reproduces the stats golden committed by golden_equivalence (which
    // runs with recording off).
    let cfg = quick_cfg(IndexKind::Tree, 42);
    let got = stats_json(&run::run(SystemKind::Utps, &cfg)) + "\n";
    let path = format!("{GOLDEN_DIR}/equiv_utps_t_42.json");
    let want = std::fs::read_to_string(&path).expect("stats golden missing");
    assert_eq!(got, want, "history recording perturbed the simulation");
}
