//! End-to-end validation of the oracle + explorer: an intentionally planted
//! consistency bug must be *found*, *replayed byte-for-byte*, and *shrunk*.
//!
//! The `bug-skip-dedup` feature makes [`utps_core::retry::DedupTable`]
//! forget every sequence number it has seen, so duplicated deliveries (and
//! client retransmits) execute twice. A delayed duplicate of a mutation
//! then re-executes *after* later writes to the same key have completed,
//! resurrecting or re-deleting state the history says is gone — a real
//! linearizability violation the oracle must catch.
//!
//! This test only exists under the feature, and must be run alone:
//!
//! ```text
//! cargo test --release --features bug-skip-dedup --test bug_detection
//! ```
//!
//! (Running the *whole* suite with the feature on would rightly fail the
//! chaos exactly-once tests — that is the bug doing its job.)
#![cfg(feature = "bug-skip-dedup")]

use utps::prelude::*;
use utps::sim::time::MICROS;

/// A duplication-heavy plan: 5% of polled requests delivered twice, the
/// duplicate delayed 100 µs so it lands after subsequent ops on the key.
fn dup_faults() -> FaultConfig {
    FaultConfig {
        dup_prob: 0.05,
        delay_ps: 100 * MICROS,
        ..FaultConfig::default()
    }
}

fn bug_cfg(seed: u64, schedule: ScheduleMode) -> RunConfig {
    RunConfig {
        index: IndexKind::Tree,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::CHURN,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        faults: dup_faults(),
        record_history: true,
        oracle: true,
        schedule,
        ..RunConfig::default()
    }
}

#[test]
fn planted_dedup_bug_is_caught_replayed_and_shrunk() {
    // 1. Detection: the oracle must flag the bug within a bounded number of
    //    exploration seeds.
    let mut failing: Option<(u64, RunResult)> = None;
    for seed in [42u64, 7, 1234, 5, 99, 2024] {
        let cfg = bug_cfg(seed, ScheduleMode::Explore(ScheduleConfig::explore(seed)));
        let r = run_utps(&cfg);
        if !r.oracle.as_ref().unwrap().ok() {
            failing = Some((seed, r));
            break;
        }
    }
    let (seed, first) =
        failing.expect("the planted dedup bug escaped the oracle across 6 exploration seeds");
    let violations = first.oracle.as_ref().unwrap().violations.len();
    assert!(violations > 0);

    // 2. Replay: re-running the recorded schedule reproduces the exact same
    //    run — same history, same verdict.
    let replay_cfg = bug_cfg(seed, ScheduleMode::Replay(first.schedule_trace.clone()));
    let replayed = run_utps(&replay_cfg);
    assert_eq!(
        first.history_digest, replayed.history_digest,
        "replay of the failing schedule produced a different history"
    );
    assert!(
        !replayed.oracle.as_ref().unwrap().ok(),
        "replay of the failing schedule no longer fails"
    );

    // 3. Shrink: ddmin the perturbation trace down to a minimal failing
    //    schedule (possibly empty — the dup faults alone may suffice).
    let minimal = shrink_schedule(&first.schedule_trace, |events| {
        let cfg = bug_cfg(seed, ScheduleMode::Replay(events.to_vec()));
        !run_utps(&cfg).oracle.as_ref().unwrap().ok()
    });
    assert!(minimal.len() <= first.schedule_trace.len());
    let min_cfg = bug_cfg(seed, ScheduleMode::Replay(minimal.clone()));
    let min_run = run_utps(&min_cfg);
    assert!(
        !min_run.oracle.as_ref().unwrap().ok(),
        "minimized schedule ({} of {} events) no longer reproduces the bug",
        minimal.len(),
        first.schedule_trace.len()
    );
}

#[test]
fn bug_is_invisible_to_aggregate_stats() {
    // The planted bug corrupts *consistency*, not liveness: throughput and
    // completion counts look healthy, which is exactly why the oracle is
    // needed. (Duplicate responses are visible as a counter, but nothing
    // fails without checking the history.)
    let cfg = bug_cfg(42, ScheduleMode::Off);
    let r = run_utps(&cfg);
    assert!(r.completed > 1_000, "run too small to mean anything");
}
