//! Golden-file regression test for the *cluster* `stats_json` schema.
//!
//! A non-trivial cluster run adds a `cluster` section (shard count,
//! migration/replication tallies, per-size-class p99/p999) and pins the
//! `cluster.*` / `latency.p99.*` metric names in the snapshot. Dropping or
//! renaming any of these must fail loudly — they are consumed by the same
//! plotting/CI tooling as the single-machine schema.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test cluster_stats_schema
//! ```

use utps::prelude::*;
use utps::sim::time::MICROS;
use utps_core::experiment::stats_json;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/cluster_stats_schema.txt"
);

fn schema_cfg() -> ClusterConfig {
    let base = RunConfig {
        index: IndexKind::Hash,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed: 42,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        ..RunConfig::default()
    };
    ClusterConfig {
        large_shards: 1,
        large_keys: 500,
        replicate_keys: vec![0, 1],
        migrations: vec![MigrationSpec {
            at_ps: 800 * MICROS,
            class: SizeClass::Small,
            slot: 3,
            to_shard: 0,
        }],
        link: LinkConfig::chaos_default(),
        ..ClusterConfig::new(base, 2)
    }
}

/// Every `"key":` in document order. String *values* are skipped because a
/// closing quote followed by anything but `:` is not a key.
fn keys_of(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            let mut k = j + 1;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.push(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[test]
fn cluster_stats_json_schema_matches_golden() {
    let r = run_cluster(SystemKind::Utps, &schema_cfg());
    let got = keys_of(&stats_json(&r)).join("\n") + "\n";

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).expect("cannot write golden file");
        return;
    }

    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "cluster stats_json schema changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test cluster_stats_schema"
    );
}

#[test]
fn cluster_metrics_are_pinned_in_schema() {
    // The cluster metric names must be present on every non-trivial cluster
    // run — including the per-size-class latency gauges — so dashboards
    // never see a shifting schema.
    let json = stats_json(&run_cluster(SystemKind::Utps, &schema_cfg()));
    for key in [
        "cluster.migrated_items",
        "cluster.migrated_slots",
        "cluster.migrations",
        "cluster.moved_bounce",
        "cluster.replica_read",
        "cluster.replica_refresh",
        "cluster.routed_large",
        "cluster.routed_small",
        "cluster.shards",
        "latency.p99.large",
        "latency.p99.small",
        "latency.p999.large",
        "latency.p999.small",
        "p99_small_ns",
        "p999_small_ns",
        "p99_large_ns",
        "p999_large_ns",
    ] {
        assert!(
            json.contains(&format!("\"{key}\":")),
            "cluster stats JSON lost pinned key {key}"
        );
    }
}

#[test]
fn trivial_cluster_run_has_no_cluster_section() {
    // The other face of N=1 transparency: a trivial cluster must not leak
    // any cluster key into the document.
    let cfg = ClusterConfig::new(schema_cfg().base, 1);
    assert!(cfg.is_trivial());
    let json = stats_json(&run_cluster(SystemKind::Utps, &cfg));
    assert!(
        !json.contains("\"cluster") && !json.contains("\"latency.p99"),
        "trivial one-shard cluster leaked cluster keys into stats_json"
    );
}
