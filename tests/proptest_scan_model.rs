//! Property tests for the store against sequential and concurrent models.
//!
//! 1. Arbitrary op streams driven through [`KvOp`] must agree with a
//!    `BTreeMap` model op-for-op (results *and* final state).
//! 2. μTPS-T range scans racing concurrent inserts and deletes must never
//!    return phantom or dropped keys: several simulated processes mutate a
//!    small keyspace while scanners sweep it, every operation is recorded
//!    into a [`History`], and the linearizability oracle validates the lot —
//!    its scan pass bounds each observed count by the keys definitely /
//!    possibly present during the scan window.

use proptest::collection::vec;
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use utps_core::store::{KvOp, KvOpOutput, KvStore, OpBuffers};
use utps_index::{IndexKind, Step};
use utps_oracle::{check, fill_digest, value_digest, History, InitialState, OpClass};
use utps_sim::time::SimTime;
use utps_sim::{Ctx, Engine, MachineConfig, Process, StatClass, StepOutcome};

const BUFS: OpBuffers = OpBuffers {
    recv_addr: 0x10_0000,
    resp_addr: 0x20_0000,
};

/// One generated operation over a small keyspace.
#[derive(Clone, Debug)]
enum ModelOp {
    Put(u64, u8, usize),
    Delete(u64),
    Get(u64),
    Scan(u64, usize),
}

fn op_strategy(keys: u64) -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0..keys, 1u8..=255, 1usize..64).prop_map(|(k, f, n)| ModelOp::Put(k, f, n)),
        (0..keys).prop_map(ModelOp::Delete),
        (0..keys).prop_map(ModelOp::Get),
        (0..keys, 1usize..16).prop_map(|(k, n)| ModelOp::Scan(k, n)),
    ]
}

/// Runs `f` inside a one-shot simulated process over `store`.
fn with_store(store: KvStore, f: impl FnOnce(&mut Ctx<'_>, &mut KvStore) + 'static) {
    struct Once<F> {
        f: Option<F>,
    }
    impl<F: FnOnce(&mut Ctx<'_>, &mut KvStore)> Process<KvStore> for Once<F> {
        fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut KvStore) -> StepOutcome {
            if let Some(f) = self.f.take() {
                f(ctx, world);
            }
            ctx.halt();
            StepOutcome::Idle
        }
    }
    let mut eng = Engine::new(MachineConfig::tiny(), 1, store);
    eng.spawn(Some(0), StatClass::Other, Box::new(Once { f: Some(f) }));
    eng.run_until(SimTime::from_millis(1_000));
}

fn drive(ctx: &mut Ctx<'_>, store: &mut KvStore, op: &mut KvOp) -> KvOpOutput {
    loop {
        match op.poll(ctx, store) {
            Step::Done(v) => return v,
            Step::Ready => {}
            Step::Blocked => panic!("blocked in single-process property test"),
        }
    }
}

fn check_sequential_model(ops: Vec<ModelOp>) {
    const POP: u64 = 32;
    let store = KvStore::populate(IndexKind::Tree, POP, 16);
    let mut model: BTreeMap<u64, Vec<u8>> = (0..POP).map(|k| (k, vec![0xab; 16])).collect();
    with_store(store, move |ctx, store| {
        for op in ops {
            match op {
                ModelOp::Put(k, fill, len) => {
                    let value = vec![fill; len];
                    let mut op = KvOp::put(store, k, value.clone().into_boxed_slice(), BUFS);
                    assert!(drive(ctx, store, &mut op).ok);
                    model.insert(k, value);
                }
                ModelOp::Delete(k) => {
                    let mut op = KvOp::delete(store, k, BUFS);
                    let out = drive(ctx, store, &mut op);
                    assert_eq!(out.ok, model.remove(&k).is_some(), "delete {k}");
                }
                ModelOp::Get(k) => {
                    let mut op = KvOp::get(store, k, BUFS);
                    let out = drive(ctx, store, &mut op);
                    match model.get(&k) {
                        Some(want) => {
                            assert!(out.ok, "get {k} missed");
                            let v = out.value.expect("ok get returns bytes");
                            assert_eq!(ctx.machine().payloads.get(v), &want[..], "get {k}");
                            ctx.machine().payloads.free(v);
                        }
                        None => assert!(!out.ok, "get {k} found a deleted key"),
                    }
                }
                ModelOp::Scan(k, n) => {
                    let mut op = KvOp::scan(store, k, n, vec![], BUFS);
                    let out = drive(ctx, store, &mut op);
                    let want: Vec<&Vec<u8>> = model.range(k..).take(n).map(|(_, v)| v).collect();
                    assert_eq!(out.scan_count as usize, want.len(), "scan [{k}..] x{n}");
                    let bytes: usize = want.iter().map(|v| v.len()).sum();
                    assert_eq!(out.payload, bytes, "scan [{k}..] x{n} payload");
                }
            }
        }
        // Final state equivalence.
        assert_eq!(store.len(), model.len());
        for (&k, v) in model.iter() {
            assert_eq!(store.get_native(k), Some(&v[..]), "final state key {k}");
        }
    });
}

/// A simulated worker that executes its op list one poll per scheduling
/// slot, recording invoke/response into the shared history — mutations and
/// scans from different cores interleave mid-operation.
struct Worker {
    id: u32,
    ops: Vec<ModelOp>,
    next: usize,
    seq: u64,
    cur: Option<KvOp>,
    value_len: usize,
    history: Rc<RefCell<History>>,
}

impl Process<KvStore> for Worker {
    fn step(&mut self, ctx: &mut Ctx<'_>, store: &mut KvStore) -> StepOutcome {
        let Some(op) = &mut self.cur else {
            if self.next >= self.ops.len() {
                ctx.halt();
                return StepOutcome::Idle;
            }
            let op = self.ops[self.next].clone();
            self.next += 1;
            let mut h = self.history.borrow_mut();
            let now = ctx.now().as_ps();
            let kv = match op {
                ModelOp::Put(k, fill, _) => {
                    let value = vec![fill; self.value_len];
                    h.invoke(
                        self.id,
                        self.seq,
                        OpClass::Put,
                        k,
                        Some(fill_digest(fill, self.value_len)),
                        0,
                        now,
                    );
                    KvOp::put(store, k, value.into_boxed_slice(), BUFS)
                }
                ModelOp::Delete(k) => {
                    h.invoke(self.id, self.seq, OpClass::Delete, k, None, 0, now);
                    KvOp::delete(store, k, BUFS)
                }
                ModelOp::Get(k) => {
                    h.invoke(self.id, self.seq, OpClass::Get, k, None, 0, now);
                    KvOp::get(store, k, BUFS)
                }
                ModelOp::Scan(k, n) => {
                    h.invoke(self.id, self.seq, OpClass::Scan, k, None, n as u32, now);
                    KvOp::scan(store, k, n, vec![], BUFS)
                }
            };
            self.cur = Some(kv);
            return StepOutcome::Progress;
        };
        match op.poll(ctx, store) {
            Step::Done(out) => {
                let digest = out.value.map(|v| {
                    let d = value_digest(ctx.machine().payloads.get(v));
                    ctx.machine().payloads.free(v);
                    d
                });
                self.history.borrow_mut().response(
                    self.id,
                    self.seq,
                    ctx.now().as_ps(),
                    out.ok,
                    digest,
                    out.scan_count,
                );
                self.seq += 1;
                self.cur = None;
            }
            Step::Ready | Step::Blocked => {}
        }
        StepOutcome::Progress
    }
}

fn check_concurrent_oracle(mutators: Vec<Vec<ModelOp>>, scans: Vec<ModelOp>) {
    const POP: u64 = 64;
    const LEN: usize = 16;
    let store = KvStore::populate(IndexKind::Tree, POP, LEN);
    let history = Rc::new(RefCell::new(History::new()));
    let cores = mutators.len() + 1;
    let mut eng = Engine::new(MachineConfig::tiny(), cores, store);
    for (i, ops) in mutators.into_iter().enumerate() {
        eng.spawn(
            Some(i),
            StatClass::Other,
            Box::new(Worker {
                id: i as u32,
                ops,
                next: 0,
                seq: 0,
                cur: None,
                value_len: LEN,
                history: Rc::clone(&history),
            }),
        );
    }
    eng.spawn(
        Some(cores - 1),
        StatClass::Other,
        Box::new(Worker {
            id: (cores - 1) as u32,
            ops: scans,
            next: 0,
            seq: 0,
            cur: None,
            value_len: LEN,
            history: Rc::clone(&history),
        }),
    );
    eng.run_until(SimTime::from_millis(1_000));
    let h = history.borrow();
    let init = InitialState {
        keys: POP,
        value_digest: fill_digest(0xab, LEN),
    };
    let report = check(&h, &init);
    assert_eq!(report.pending, 0, "a worker did not finish its ops");
    assert!(report.scans > 0, "no scans were checked");
    assert!(
        report.ok(),
        "concurrent scans/mutations not linearizable: {:#?}",
        report.violations
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential equivalence: every KvOp result and the final store state
    /// match the BTreeMap model.
    #[test]
    fn kv_ops_match_btreemap_model(ops in vec(op_strategy(48), 1..200)) {
        check_sequential_model(ops);
    }

    /// Tree scans under concurrent inserts/deletes return no phantom and no
    /// dropped keys (validated by the oracle's scan presence bounds), and
    /// the interleaved point ops stay linearizable.
    #[test]
    fn concurrent_scans_have_no_phantom_or_dropped_keys(
        muts in vec(vec(op_strategy(64), 20..80), 2..4),
        scans in vec((0u64..64, 1usize..16).prop_map(|(k, n)| ModelOp::Scan(k, n)), 20..60),
    ) {
        check_concurrent_oracle(muts, scans);
    }
}
