//! Property test for the cold tier: arbitrary interleavings of point ops
//! and compaction passes over a small keyspace must agree with a flat
//! `BTreeMap` model, no matter how eviction slices the keys between the
//! DRAM store and the sorted run.
//!
//! The tier under test uses an aggressively tiny DRAM budget
//! (`dram_items_max = 8` over a 32-key space) so nearly every compaction
//! pass evicts, every run seal folds old-run survivors with fresh
//! evictions, and reads constantly cross the DRAM/run boundary. Deletes
//! follow the server's semantics: the ack is `ok` when the key lived in
//! DRAM *or* only in the run, and either way a tombstone shadows the run
//! copy until the next seal omits it.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use utps_core::store::{KvOp, KvOpOutput, KvStore, OpBuffers};
use utps_core::tier::{compact_pass, TierConfig, TierState};
use utps_index::{IndexKind, Step};
use utps_sim::time::SimTime;
use utps_sim::{Ctx, Engine, MachineConfig, Process, StatClass, StepOutcome};

const BUFS: OpBuffers = OpBuffers {
    recv_addr: 0x10_0000,
    resp_addr: 0x20_0000,
};
const KEYS: u64 = 32;
const POP: u64 = 24;
const LEN: usize = 16;

/// One generated operation against the tiered store.
#[derive(Clone, Debug)]
enum TierOp {
    Put(u64, u8, usize),
    Delete(u64),
    Get(u64),
    Compact,
}

fn op_strategy() -> impl Strategy<Value = TierOp> {
    prop_oneof![
        (0..KEYS, 1u8..=255, 1usize..48).prop_map(|(k, f, n)| TierOp::Put(k, f, n)),
        (0..KEYS).prop_map(TierOp::Delete),
        (0..KEYS).prop_map(TierOp::Get),
        (0..KEYS).prop_map(|_| TierOp::Compact),
    ]
}

struct TierWorld {
    store: KvStore,
    tier: TierState,
}

/// Runs `f` inside a one-shot simulated process over the tiered world.
fn with_world(world: TierWorld, f: impl FnOnce(&mut Ctx<'_>, &mut TierWorld) + 'static) {
    struct Once<F> {
        f: Option<F>,
    }
    impl<F: FnOnce(&mut Ctx<'_>, &mut TierWorld)> Process<TierWorld> for Once<F> {
        fn step(&mut self, ctx: &mut Ctx<'_>, world: &mut TierWorld) -> StepOutcome {
            if let Some(f) = self.f.take() {
                f(ctx, world);
            }
            ctx.halt();
            StepOutcome::Idle
        }
    }
    let mut eng = Engine::new(MachineConfig::tiny(), 1, world);
    eng.spawn(Some(0), StatClass::Other, Box::new(Once { f: Some(f) }));
    eng.run_until(SimTime::from_millis(1_000));
}

fn drive(ctx: &mut Ctx<'_>, store: &mut KvStore, op: &mut KvOp) -> KvOpOutput {
    loop {
        match op.poll(ctx, store) {
            Step::Done(v) => return v,
            Step::Ready => {}
            Step::Blocked => panic!("blocked in single-process property test"),
        }
    }
}

/// The tiered read path as one map: DRAM shadows the run, tombstones
/// shadow the run's copy of deleted keys.
fn effective(world: &mut TierWorld, key: u64) -> Option<Vec<u8>> {
    if let Some(v) = world.store.get_native(key) {
        return Some(v.to_vec());
    }
    world.tier.cold_get(key)
}

fn check_tier_model(ops: Vec<TierOp>) {
    let store = KvStore::populate(IndexKind::Tree, POP, LEN);
    let tier = TierState::new(
        TierConfig {
            dram_items_max: 8,
            evict_batch: 4,
            ..Default::default()
        },
        42,
    );
    let mut model: BTreeMap<u64, Vec<u8>> = (0..POP).map(|k| (k, vec![0xab; LEN])).collect();
    with_world(TierWorld { store, tier }, move |ctx, w| {
        for op in ops {
            match op {
                TierOp::Put(k, fill, len) => {
                    let value = vec![fill; len];
                    let mut op = KvOp::put(&w.store, k, value.clone().into_boxed_slice(), BUFS);
                    assert!(drive(ctx, &mut w.store, &mut op).ok, "put {k}");
                    model.insert(k, value);
                }
                TierOp::Delete(k) => {
                    let mut op = KvOp::delete(&w.store, k, BUFS);
                    let out = drive(ctx, &mut w.store, &mut op);
                    let cold_only = !out.ok && w.tier.cold_get(k).is_some();
                    if out.ok || cold_only {
                        w.tier.tombstone(k);
                    }
                    assert_eq!(
                        out.ok || cold_only,
                        model.remove(&k).is_some(),
                        "delete {k}"
                    );
                }
                TierOp::Get(k) => {
                    let mut op = KvOp::get(&w.store, k, BUFS);
                    let out = drive(ctx, &mut w.store, &mut op);
                    let got = if out.ok {
                        let v = out.value.expect("ok get returns bytes");
                        let bytes = ctx.machine().payloads.get(v).to_vec();
                        ctx.machine().payloads.free(v);
                        Some(bytes)
                    } else {
                        w.tier.cold_get(k)
                    };
                    assert_eq!(got.as_deref(), model.get(&k).map(|v| &v[..]), "get {k}");
                }
                TierOp::Compact => {
                    compact_pass(&mut w.tier, &mut w.store, None, KEYS, ctx);
                    // A seal folds the tombstones into the omitted keys.
                    for k in 0..KEYS {
                        assert_eq!(
                            effective(w, k).as_deref(),
                            model.get(&k).map(|v| &v[..]),
                            "post-compaction key {k}"
                        );
                    }
                }
            }
        }
        // Final full-sweep equivalence across both tiers.
        for k in 0..KEYS {
            assert_eq!(
                effective(w, k).as_deref(),
                model.get(&k).map(|v| &v[..]),
                "final state key {k}"
            );
        }
        // Every model item is in DRAM or the run; nothing beyond the model
        // count survives in DRAM (the run may hold shadowed stale copies).
        assert!(w.store.len() <= model.len(), "DRAM holds deleted items");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiered reads/writes/deletes interleaved with compaction passes match
    /// the BTreeMap model key-for-key after every seal.
    #[test]
    fn tiered_ops_match_btreemap_model(ops in vec(op_strategy(), 1..160)) {
        check_tier_model(ops);
    }
}

/// A deterministic regression for the trickiest interleaving: a key is
/// evicted to the run, deleted cold (tombstone), re-put into DRAM, and the
/// next seal must carry the *new* value — not resurrect the old run copy,
/// not lose the key to the stale tombstone.
#[test]
fn tombstone_then_reput_survives_compaction() {
    let store = KvStore::populate(IndexKind::Tree, POP, LEN);
    let tier = TierState::new(
        TierConfig {
            dram_items_max: 0,
            evict_batch: POP as usize,
            ..Default::default()
        },
        7,
    );
    with_world(TierWorld { store, tier }, |ctx, w| {
        // Everything evicts: key 3 now lives only in the run.
        compact_pass(&mut w.tier, &mut w.store, None, KEYS, ctx);
        assert_eq!(w.store.len(), 0);
        assert_eq!(w.tier.run_items(), POP);
        assert!(w.tier.cold_get(3).is_some());

        // Cold delete: tombstone shadows the run copy immediately.
        w.tier.tombstone(3);
        assert!(w.tier.cold_get(3).is_none());

        // Re-put while the tombstone is still live.
        let mut op = KvOp::put(&w.store, 3, vec![0x5a; 8].into_boxed_slice(), BUFS);
        assert!(drive(ctx, &mut w.store, &mut op).ok);
        assert_eq!(effective(w, 3).as_deref(), Some(&[0x5a; 8][..]));

        // The next seal evicts the fresh copy and clears the tombstone; the
        // new value must win over both the stale run entry and the shadow.
        compact_pass(&mut w.tier, &mut w.store, None, KEYS, ctx);
        assert_eq!(w.store.len(), 0);
        assert_eq!(w.tier.tombstone_count(), 0);
        assert_eq!(w.tier.cold_get(3).as_deref(), Some(&[0x5a; 8][..]));
    });
}
