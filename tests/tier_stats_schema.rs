//! Golden-file regression test for the *tier-enabled* `stats_json` schema.
//!
//! The durable tier adds a `tier` section (WAL, cold-path, compaction and
//! device counters) to the JSON sidecar — but only when the tier is
//! configured. Two contracts pinned here:
//!
//! * a tier-enabled run's key set matches the golden (so the new counters
//!   can't silently drop or rename), and μTPS and BaseKV agree on it;
//! * a tier-*less* run's schema contains none of the tier keys — the
//!   pre-tier golden (`stats_schema.txt`) and the run-equivalence goldens
//!   stay byte-identical, which is the "zero cost when disabled" story.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test tier_stats_schema
//! ```

use utps::prelude::*;
use utps::sim::time::MICROS;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/tier_stats_schema.txt"
);

fn tier_cfg() -> RunConfig {
    RunConfig {
        index: IndexKind::Tree,
        keys: 20_000,
        workers: 6,
        n_cr: 2,
        clients: 12,
        pipeline: 4,
        warmup: 500 * MICROS,
        duration: 1_200 * MICROS,
        machine: MachineConfig::tiny(),
        hot_capacity: 1_000,
        sample_every: 2,
        seed: 42,
        workload: WorkloadSpec::Ycsb {
            mix: Mix::A,
            theta: 0.99,
            value_len: 64,
            scan_len: 20,
        },
        retry: RetryConfig::chaos_default(),
        tier: Some(TierConfig {
            dram_items_max: 15_000,
            evict_batch: 256,
            compact_every_ps: 100 * MICROS,
            ..Default::default()
        }),
        ..RunConfig::default()
    }
}

/// Every `"key":` in document order (same parser as `stats_schema.rs`).
fn keys_of(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            let mut k = j + 1;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.push(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[test]
fn tier_stats_json_schema_matches_golden() {
    use utps::core::experiment::{run_utps, stats_json};
    let r = run_utps(&tier_cfg());
    assert!(r.tier.is_some(), "tier-enabled run reported no tier stats");
    let got = keys_of(&stats_json(&r)).join("\n") + "\n";

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).expect("cannot write golden file");
        return;
    }

    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "tier stats_json schema changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test tier_stats_schema"
    );
}

#[test]
fn tier_counters_are_pinned_when_enabled() {
    use utps::core::experiment::{run_utps, stats_json};
    let json = stats_json(&run_utps(&tier_cfg()));
    for key in [
        "tier",
        "wal_records",
        "wal_groups",
        "wal_bytes",
        "cold_hits",
        "cold_misses",
        "compactions",
        "evicted",
        "run_items",
        "tombstones",
        "device_reads",
        "device_writes",
        "durable_seq",
        "last_applied",
    ] {
        assert!(
            json.contains(&format!("\"{key}\":")),
            "tier stats JSON lost pinned key {key}"
        );
    }
}

#[test]
fn basekv_tier_run_shares_the_schema() {
    // Both systems report the same `tier` section (the stage-metric
    // snapshots legitimately differ — BaseKV has no CR/MR stages): a
    // dashboard reading the tier block needs no per-system special case.
    use utps::core::experiment::stats_json;
    fn tier_block(json: &str) -> Vec<String> {
        let keys = keys_of(json);
        let start = keys.iter().position(|k| k == "tier").expect("no tier key");
        let end = keys
            .iter()
            .position(|k| k == "last_applied")
            .expect("no last_applied key");
        keys[start..=end].to_vec()
    }
    let utps_json = stats_json(&utps::core::experiment::run_utps(&tier_cfg()));
    let base_json = stats_json(&run(SystemKind::BaseKv, &tier_cfg()));
    assert_eq!(
        tier_block(&utps_json),
        tier_block(&base_json),
        "μTPS and BaseKV tier runs disagree on the tier stats schema"
    );
}

#[test]
fn tierless_schema_has_no_tier_keys() {
    // Disabling the tier must remove the whole section — the pre-tier
    // golden (stats_schema.txt) and the run-equivalence goldens rely on
    // tier-less snapshots staying byte-identical to the seed.
    use utps::core::experiment::{run_utps, stats_json};
    let cfg = RunConfig {
        tier: None,
        ..tier_cfg()
    };
    let r = run_utps(&cfg);
    assert!(r.tier.is_none(), "tier-less run reported tier stats");
    let json = stats_json(&r);
    for needle in ["\"tier\":", "\"wal_records\":", "\"device_reads\":"] {
        assert!(
            !json.contains(needle),
            "tier-less stats JSON leaked tier key {needle}"
        );
    }
}
